// witness_table.h — broker-published witness range assignments.
//
// Paper §4: each participating merchant M is assigned a range
// R_M = [r_{M,1}, r_{M,2}) ⊂ [0, 2^k); the ranges are disjoint and cover
// [0, 2^k).  The witness of a coin is the merchant whose range contains
// h(bare coin).  The broker signs each entry individually —
// Sig_B(version/date, {I_M, r_{M,1}, r_{M,2}}) — so a coin only carries the
// entries of its own witnesses and verifiers never need the whole history
// of assignments (withdrawal requirement 3).
//
// Hard-working witnesses get proportionally larger ranges (the broker's
// incentive lever from §4 "Witness Motivation and Assignment").

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bn/bigint.h"
#include "ecash/common.h"
#include "sig/schnorr_sig.h"
#include "store/table_file.h"
#include "wire/codec.h"

namespace p2pcash::ecash {

/// Width of the witness-selection hash space [0, 2^kRangeBits).
inline constexpr std::size_t kRangeBits = 160;

/// One broker-signed witness-range assignment, embedded in coins.
struct SignedWitnessEntry {
  std::uint32_t version = 0;    ///< witness-table version ("version/date")
  Timestamp published_at = 0;
  MerchantId merchant;          ///< I_M
  sig::PublicKey witness_key;   ///< for verifying commitments/transcripts
  bn::BigInt lo;                ///< r_{M,1}
  bn::BigInt hi;                ///< r_{M,2}; range is [lo, hi)
  sig::Signature broker_sig;    ///< over everything above

  /// Canonical signed payload (everything except broker_sig).
  std::vector<std::uint8_t> signed_payload() const;

  void encode(wire::Writer& w) const;
  static SignedWitnessEntry decode(wire::Reader& r);

  bool contains(const bn::BigInt& point) const {
    return lo <= point && point < hi;
  }

  friend bool operator==(const SignedWitnessEntry&,
                         const SignedWitnessEntry&) = default;
};

/// A published table: one entry per participating witness merchant.
class WitnessTable {
 public:
  /// Builds and signs a table. `weights` maps merchants to relative range
  /// sizes (the broker's performance-based assignment); weights must be
  /// positive.  Ranges partition [0, 2^kRangeBits) in merchant order.
  struct Participant {
    MerchantId merchant;
    sig::PublicKey key;
    std::uint64_t weight = 1;
  };
  static WitnessTable build(std::uint32_t version, Timestamp published_at,
                            const std::vector<Participant>& participants,
                            const sig::KeyPair& broker_key, bn::Rng& rng);

  std::uint32_t version() const { return version_; }
  Timestamp published_at() const { return published_at_; }
  const std::vector<SignedWitnessEntry>& entries() const { return entries_; }

  /// The entry whose range contains `point`; nullopt only if the table is
  /// empty (ranges always cover the whole space).
  std::optional<SignedWitnessEntry> lookup(const bn::BigInt& point) const;

  /// Entry for a given merchant id.
  std::optional<SignedWitnessEntry> find(const MerchantId& merchant) const;

  /// Verifies every entry signature and that ranges are disjoint, sorted,
  /// and cover [0, 2^kRangeBits) exactly.
  bool validate(const group::SchnorrGroup& grp,
                const sig::PublicKey& broker_key) const;

  void encode(wire::Writer& w) const;
  static WitnessTable decode(wire::Reader& r);

  // ---- immutable table-file format (store/table_file.h) ----
  //
  // A published table never changes, so the broker can export it as an
  // mmap-friendly sorted-index file: key = lo as 20 big-endian bytes
  // (kRangeBits/8 — memcmp order equals numeric order), payload = the
  // wire-encoded SignedWitnessEntry.  Readers map the file and resolve a
  // coin's witness with one O(log n) predecessor search, no parsing of
  // the other entries.

  /// Serializes this table into the table-file byte format.
  std::vector<std::uint8_t> to_table_file() const;

  /// Resolves `point` against a mapped table file: predecessor search on
  /// the range starts, then decode + containment check on the single hit.
  /// Semantically identical to lookup() on the decoded table.
  static std::optional<SignedWitnessEntry> lookup_table_file(
      const store::TableFileView& view, const bn::BigInt& point);

 private:
  std::uint32_t version_ = 0;
  Timestamp published_at_ = 0;
  std::vector<SignedWitnessEntry> entries_;  // sorted by lo
};

}  // namespace p2pcash::ecash
