// deployment.h — an in-memory deployment of the whole system.
//
// Wires a broker, N merchant nodes (each running both a Merchant storefront
// and a WitnessService, "at the same time on the same physical hardware"
// per the paper's prototype), and any number of client wallets, with all
// protocol messages passed as direct calls.  This is the synchronous
// counterpart of the simnet actors: same protocol code, no network — used
// by unit/integration tests, examples and the Table-1 bench.

#pragma once

#include <map>
#include <memory>
#include <set>

#include "crypto/chacha.h"
#include "ecash/arbiter.h"
#include "ecash/broker.h"
#include "ecash/merchant.h"
#include "ecash/wallet.h"
#include "ecash/witness.h"

namespace p2pcash::ecash {

/// A merchant machine: storefront plus witness service (separate objects,
/// mirroring the paper's separate processes).
struct MerchantNode {
  std::unique_ptr<Merchant> merchant;
  /// Private RNG stream for the witness service.  Witness services at
  /// different nodes countersign concurrently under the verification worker
  /// pool; each service serializes its own draws with its rng_mu_, but that
  /// only protects a stream no other component touches.
  std::unique_ptr<crypto::ChaChaRng> witness_rng;
  std::unique_ptr<WitnessService> witness;
};

class Deployment {
 public:
  /// Spins up a broker and `n_merchants` registered merchants named
  /// "m000", "m001", …, publishes witness table v1. Deterministic given
  /// `seed`.
  Deployment(const group::SchnorrGroup& grp, std::size_t n_merchants,
             std::uint64_t seed, Broker::Config config = {},
             Cents security_deposit = 10'000);

  Broker& broker() { return broker_; }
  const group::SchnorrGroup& grp() const { return grp_; }
  Arbiter& arbiter() { return arbiter_; }
  bn::Rng& rng() { return rng_; }

  std::vector<MerchantId> merchant_ids() const;
  MerchantNode& node(const MerchantId& id);

  /// A fresh client wallet with its own forked RNG stream.
  std::unique_ptr<Wallet> make_wallet();

  /// Marks a merchant node unreachable (both storefront and witness) —
  /// availability fault injection for the A1 bench.
  void set_offline(const MerchantId& id, bool offline);
  bool is_offline(const MerchantId& id) const;

  // ---- high-level protocol drivers ----

  /// Full withdrawal protocol against the broker.
  Outcome<WalletCoin> withdraw(Wallet& wallet, Cents denomination,
                               Timestamp now);

  /// Full payment protocol at `merchant_id`. On success the merchant has
  /// delivered service and queued the deposit.
  struct PaymentResult {
    bool accepted = false;
    std::optional<DoubleSpendProof> double_spend_proof;
    std::optional<Refusal> refusal;
  };
  PaymentResult pay(Wallet& wallet, const WalletCoin& coin,
                    const MerchantId& merchant_id, Timestamp now);

  /// Deposits everything in a merchant's queue; returns total credited.
  struct DepositSummary {
    Cents credited = 0;
    std::size_t accepted = 0;
    std::size_t refused = 0;
  };
  DepositSummary deposit_all(const MerchantId& merchant_id, Timestamp now);

  /// Full renewal protocol for an expired coin.
  Outcome<WalletCoin> renew(Wallet& wallet, const WalletCoin& old_coin,
                            Timestamp now);

  /// Full denomination-exchange protocol: pays `coin` to the broker (with
  /// the regular witness countersignature) and withdraws `denominations`
  /// as fresh coins.  Their sum must equal the coin's value.
  Outcome<std::vector<WalletCoin>> exchange(
      Wallet& wallet, const WalletCoin& coin,
      const std::vector<Cents>& denominations, Timestamp now);

  /// Full peer-to-peer transfer protocol (transferability extension): the
  /// owner hands `coin` to `recipient` with the coin's witness endorsing
  /// the new ownership.  Returns the recipient's spendable coin; on a
  /// double transfer the witness answers with a proof instead.
  struct TransferResult {
    std::optional<WalletCoin> received;
    std::optional<DoubleSpendProof> double_spend_proof;
    std::optional<Refusal> refusal;
  };
  TransferResult transfer(Wallet& owner, const WalletCoin& coin,
                          Wallet& recipient, Timestamp now);

 private:
  group::SchnorrGroup grp_;
  crypto::ChaChaRng rng_;
  Broker broker_;
  Arbiter arbiter_;
  std::map<MerchantId, MerchantNode> nodes_;
  std::set<MerchantId> offline_;
  std::uint64_t wallet_counter_ = 0;
};

}  // namespace p2pcash::ecash
