// merchant.h — the merchant role: accept payments, collect witness
// endorsements, queue deposits.
//
// Paper Algorithm 2 steps 3–6, merchant side.  The merchant verifies the
// coin and NIZK itself (it bears the loss for an invalid coin — there is
// no issuer covering fraud), confirms the witness commitment binds the
// payment to *this* merchant, forwards the transcript to the coin's
// witness(es), and releases service only once witness_k endorsements are
// in hand.  Endorsed transcripts accumulate in a deposit queue that can be
// flushed to the broker at any later time — the broker is never on the
// payment's critical path.

#pragma once

#include <map>
#include <vector>

#include "ecash/transcript.h"

namespace p2pcash::ecash {

class Merchant {
 public:
  /// `rng` must outlive the merchant.
  Merchant(group::SchnorrGroup grp, sig::PublicKey broker_key, MerchantId id,
           sig::KeyPair key, bn::Rng& rng);

  const MerchantId& id() const { return id_; }
  const sig::PublicKey& public_key() const { return key_.public_key(); }
  const sig::KeyPair& key_pair() const { return key_; }

  /// Step 3: validates an incoming payment *before* consulting witnesses:
  /// coin verifies (broker signature, witness entries, expiry), commitments
  /// bind this merchant (nonce = h(salt || I_M)), commitments cover the
  /// coin and are signed by assigned witnesses, NIZK response verifies, and
  /// the coin was not already presented here.  On success the payment is
  /// pending until enough endorsements arrive.
  Outcome<std::monostate> receive_payment(
      const PaymentTranscript& transcript,
      const std::vector<WitnessCommitment>& commitments, Timestamp now);

  /// Step 5/6: records a witness endorsement (after verifying it). Returns
  /// true when the payment has reached witness_k endorsements — service can
  /// be delivered and the signed transcript joins the deposit queue.
  Outcome<bool> add_endorsement(const Hash256& coin_hash,
                                const WitnessEndorsement& endorsement);

  /// A witness answered with a double-spend proof: verify it and drop the
  /// pending payment. Returns the verified proof (to show the client).
  Outcome<DoubleSpendProof> handle_double_spend(const Hash256& coin_hash,
                                                const DoubleSpendProof& proof);

  /// Pending payment lookup (e.g. to retry witnesses).
  const PaymentTranscript* pending(const Hash256& coin_hash) const;
  /// Drops a pending payment (client abandoned / witness unreachable).
  void abandon(const Hash256& coin_hash);
  /// Drops every pending (not yet fully endorsed) payment — crash recovery
  /// and mass-abandon path: the client retries from scratch, and a payment
  /// without witness_k endorsements is worth nothing at deposit time.
  /// Returns how many were dropped.  Endorsed transcripts in the deposit
  /// queue and the seen-coin set are untouched.
  std::size_t drop_pending();
  /// True once this coin completed a payment here (service was delivered),
  /// so a retransmitted transcript can be re-acknowledged idempotently.
  bool already_serviced(const Hash256& coin_hash) const {
    return seen_coins_.contains(coin_hash);
  }

  /// Completed, endorsed transcripts awaiting deposit; drained by caller.
  std::vector<SignedTranscript> drain_deposit_queue();
  std::size_t deposit_queue_size() const { return deposit_queue_.size(); }

  /// Services delivered (completed payments).
  std::uint64_t services_delivered() const { return services_delivered_; }
  /// Double-spend attempts blocked at this merchant.
  std::uint64_t double_spends_blocked() const { return double_spends_blocked_; }

 private:
  struct PendingPayment {
    PaymentTranscript transcript;
    std::vector<WitnessCommitment> commitments;
    std::vector<WitnessEndorsement> endorsements;
  };

  group::SchnorrGroup grp_;
  sig::PublicKey broker_key_;
  MerchantId id_;
  sig::KeyPair key_;
  bn::Rng& rng_;

  std::map<Hash256, PendingPayment> pending_;
  std::map<Hash256, std::monostate> seen_coins_;  // accepted here before
  std::vector<SignedTranscript> deposit_queue_;
  std::uint64_t services_delivered_ = 0;
  std::uint64_t double_spends_blocked_ = 0;
};

}  // namespace p2pcash::ecash
