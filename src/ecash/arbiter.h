// arbiter.h — third-party conflict resolution.
//
// Paper §5: "in case of problems, all communication transcripts can be
// submitted to a third party for resolution, which can decide who has
// violated the protocols", and §6 leaves the verification "routine
// exercise" to the reader — this module is that exercise, made executable.
//
// The arbiter is stateless and needs no secrets: every judgement is made
// from signed, publicly verifiable material.

#pragma once

#include <optional>

#include "ecash/transcript.h"

namespace p2pcash::ecash {

enum class Verdict : std::uint8_t {
  kWitnessViolated,    ///< the witness cheated (or stonewalled)
  kClientDoubleSpent,  ///< the coin owner double-spent; refusal justified
  kMerchantViolated,   ///< the merchant presented inconsistent evidence
  kNoFault,            ///< evidence consistent with honest behaviour
  kInvalidEvidence,    ///< inputs do not even verify; nothing to judge
};

const char* to_string(Verdict verdict);

class Arbiter {
 public:
  explicit Arbiter(group::SchnorrGroup grp) : grp_(std::move(grp)) {}

  /// The race-condition dispute of §5: a witness refused to countersign,
  /// claiming double-spend, and the merchant demanded the committed value v
  /// behind h(v).  Rules:
  ///   * v must hash to the commitment's value_hash (else the witness is
  ///     hiding something: witness violated);
  ///   * if v is fresh randomness, the witness knew of no prior spend when
  ///     it committed, so refusing was a protocol violation;
  ///   * if v contains a prior transcript or extracted representations that
  ///     check out against the coin, the client double-spent.
  /// `refusal_proof` is the double-spend proof the witness answered with;
  /// it must verify against the coin in `transcript`.
  Verdict judge_refusal(const PaymentTranscript& transcript,
                        const WitnessCommitment& commitment,
                        const std::optional<CommittedValue>& revealed,
                        const DoubleSpendProof& refusal_proof) const;

  /// Deposit-side dispute: two witness-signed transcripts for one coin.
  /// If both signatures verify under the coin's assigned witness key and
  /// the transcripts differ, the witness double-signed: witness violated.
  Verdict judge_double_signing(const SignedTranscript& first,
                               const SignedTranscript& second,
                               const MerchantId& witness) const;

  /// Validates a standalone double-spend proof against a coin.
  bool verify_double_spend_proof(const Coin& coin,
                                 const DoubleSpendProof& proof) const;

 private:
  group::SchnorrGroup grp_;
};

}  // namespace p2pcash::ecash
