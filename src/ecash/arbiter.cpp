#include "ecash/arbiter.h"

#include <algorithm>

namespace p2pcash::ecash {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kWitnessViolated: return "witness-violated";
    case Verdict::kClientDoubleSpent: return "client-double-spent";
    case Verdict::kMerchantViolated: return "merchant-violated";
    case Verdict::kNoFault: return "no-fault";
    case Verdict::kInvalidEvidence: return "invalid-evidence";
  }
  return "unknown";
}

bool Arbiter::verify_double_spend_proof(const Coin& coin,
                                        const DoubleSpendProof& proof) const {
  const auto current = current_commitments(coin);
  return proof.coin_hash == coin.bare.coin_hash() &&
         proof.a == current.a && proof.b == current.b && proof.verify(grp_);
}

Verdict Arbiter::judge_refusal(const PaymentTranscript& transcript,
                               const WitnessCommitment& commitment,
                               const std::optional<CommittedValue>& revealed,
                               const DoubleSpendProof& refusal_proof) const {
  const Coin& coin = transcript.coin;
  const Hash256 coin_hash = coin.bare.coin_hash();

  // The dispute only makes sense if the commitment covers the coin and is
  // signed by one of its assigned witnesses.
  if (commitment.coin_hash != coin_hash) return Verdict::kInvalidEvidence;
  auto entry = std::find_if(coin.witnesses.begin(), coin.witnesses.end(),
                            [&](const SignedWitnessEntry& e) {
                              return e.merchant == commitment.witness;
                            });
  if (entry == coin.witnesses.end()) return Verdict::kInvalidEvidence;
  if (!sig::verify(grp_, entry->witness_key, commitment.signed_payload(),
                   commitment.witness_sig))
    return Verdict::kInvalidEvidence;
  // The merchant's own claim must be internally consistent: the nonce must
  // bind the transcript's merchant.
  if (payment_nonce(transcript.salt, transcript.merchant) != commitment.nonce)
    return Verdict::kMerchantViolated;

  // The refusal proof itself must open this coin's commitments; a witness
  // refusing with garbage is cheating outright.
  if (!verify_double_spend_proof(coin, refusal_proof))
    return Verdict::kWitnessViolated;

  // The witness must reveal v on demand; silence is a violation.
  if (!revealed) return Verdict::kWitnessViolated;
  if (revealed->hash() != commitment.value_hash)
    return Verdict::kWitnessViolated;

  switch (revealed->kind) {
    case CommittedValue::Kind::kFresh:
      // Committed while knowing of no prior spend, then claimed a prior
      // spend: the paper's explicit witness-violation case.
      return Verdict::kWitnessViolated;
    case CommittedValue::Kind::kPriorTranscript:
    case CommittedValue::Kind::kExtracted:
      // The witness committed already knowing evidence of a prior spend;
      // given the proof verifies, the client double-spent.
      return Verdict::kClientDoubleSpent;
  }
  return Verdict::kInvalidEvidence;
}

Verdict Arbiter::judge_double_signing(const SignedTranscript& first,
                                      const SignedTranscript& second,
                                      const MerchantId& witness) const {
  const Coin& coin = first.transcript.coin;
  if (first.transcript.coin.bare != second.transcript.coin.bare)
    return Verdict::kInvalidEvidence;  // different coins — no conflict
  if (first.transcript == second.transcript)
    return Verdict::kNoFault;  // the same transcript twice proves nothing

  auto entry = std::find_if(coin.witnesses.begin(), coin.witnesses.end(),
                            [&](const SignedWitnessEntry& e) {
                              return e.merchant == witness;
                            });
  if (entry == coin.witnesses.end()) return Verdict::kInvalidEvidence;

  auto signed_by = [&](const SignedTranscript& st) {
    return std::any_of(st.endorsements.begin(), st.endorsements.end(),
                       [&](const WitnessEndorsement& e) {
                         return e.witness == witness &&
                                sig::verify(grp_, entry->witness_key,
                                            st.transcript.signed_payload(),
                                            e.signature);
                       });
  };
  if (signed_by(first) && signed_by(second)) return Verdict::kWitnessViolated;
  return Verdict::kInvalidEvidence;
}

}  // namespace p2pcash::ecash
