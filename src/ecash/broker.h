// broker.h — the broker B: coin issuing, witness-table publication, deposit
// clearing, witness punishment, and coin renewal.
//
// The broker is the only party that touches real money (the paper's bank
// interaction is "orthogonal"; we model it as simple cent ledgers).  It is
// explicitly *not* required to be online during payments — nothing in
// WitnessService or Merchant calls into Broker.
//
// Deposit clearing implements paper Algorithm 3 including the two
// double-deposit cases: a merchant re-depositing its own coin is refused;
// two different merchants depositing the same coin means the coin's witness
// signed twice, so the second merchant is paid out of the witness's
// security deposit and the witness is flagged with a two-signature proof.
//
// Renewal implements Algorithm 4.  We close the paper's deposit/renewal
// race with a grace window: deposits are accepted until soft_expiry +
// grace, renewals only after it, so a coin can never be both deposited and
// renewed legitimately.
//
// Thread safety: a real broker serves many clients at once, so every
// public entry point takes an internal mutex — concurrent withdrawals,
// deposits, renewals and table publications are serialized and the
// check-then-record sequences (deposit dedup, one-response-per-session)
// stay atomic.  Published tables live in a deque so references returned by
// current_table()/table() stay valid across later publications.  Accessors
// that return references into live state (witness_faults(),
// renewal_fraud_proofs()) require the broker to be quiescent.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "blindsig/abe_okamoto.h"
#include "ecash/coin.h"
#include "ecash/transcript.h"
#include "ecash/witness_table.h"
#include "store/store.h"
#include "sync/annotated.h"

namespace p2pcash::ecash {

/// Evidence that a witness signed two transcripts for one coin.
struct WitnessFaultProof {
  Hash256 coin_hash{};
  SignedTranscript first;
  SignedTranscript second;
  MerchantId witness;
};

class Broker {
 public:
  struct Config {
    /// Coin lifetime: soft expiry = issue time + this.
    Timestamp soft_lifetime_ms = 30LL * 24 * 3600 * 1000;
    /// Hard expiry = soft expiry + this.
    Timestamp renewal_window_ms = 30LL * 24 * 3600 * 1000;
    /// Deposits accepted until soft_expiry + grace; renewals only after.
    Timestamp deposit_grace_ms = 24LL * 3600 * 1000;
    /// Witness policy stamped into new coins.
    std::uint8_t witness_n = 1;
    std::uint8_t witness_k = 1;
  };

  /// `rng` must outlive the broker.
  Broker(group::SchnorrGroup grp, bn::Rng& rng, Config config);
  Broker(group::SchnorrGroup grp, bn::Rng& rng)
      : Broker(std::move(grp), rng, Config{}) {}

  Config config() const {
    sync::MutexLock lock(mu_);
    return config_;
  }
  void set_config(const Config& config) {
    sync::MutexLock lock(mu_);
    config_ = config;
  }

  /// The broker's public key y = g^x — verifies both coin blind signatures
  /// and Sig_B on witness-range entries (one broker identity, as in the
  /// paper; the two uses are domain-separated in the hash).
  ///
  /// Unlocked on purpose: the key pair changes only in restore_state(),
  /// which requires the broker to be quiescent (no concurrent callers), so
  /// these reads never race with the write.
  const sig::PublicKey& public_key() const P2P_NO_THREAD_SAFETY_ANALYSIS {
    return identity_.public_key();
  }
  sig::PublicKey coin_key() const P2P_NO_THREAD_SAFETY_ANALYSIS {
    return identity_.public_key();
  }
  const sig::PublicKey& identity_key() const P2P_NO_THREAD_SAFETY_ANALYSIS {
    return identity_.public_key();
  }

  // ---- merchant registration (paper §4: accounts + security deposits) ----

  /// Registers a merchant with its certified key and a security deposit.
  /// Re-registering updates key/deposit.
  void register_merchant(const MerchantId& id, const sig::PublicKey& key,
                         Cents security_deposit);
  bool is_registered(const MerchantId& id) const;

  struct MerchantAccount {
    sig::PublicKey key;
    Cents deposit_remaining = 0;   ///< security deposit left
    std::int64_t balance = 0;      ///< cleared e-cash earnings (cents)
    std::uint64_t weight = 1;      ///< witness-range weight (performance)
    bool flagged = false;          ///< caught double-signing
  };
  /// nullptr if unknown.
  const MerchantAccount* account(const MerchantId& id) const;
  /// Adjusts the range weight the next published table will use.
  void set_weight(const MerchantId& id, std::uint64_t weight);

  // ---- witness table publication ----

  /// Builds, signs and publishes a new table version over all registered,
  /// unflagged merchants. Returns the new table.
  const WitnessTable& publish_witness_table(Timestamp now);
  const WitnessTable& current_table() const;
  /// nullptr if that version was never published.
  const WitnessTable* table(std::uint32_t version) const;

  // ---- withdrawal (Algorithm 1, broker side) ----

  struct WithdrawalOffer {
    std::uint64_t session;
    CoinInfo info;                      ///< agreed public attachment
    blindsig::SignerFirstMessage first; ///< a, b
  };
  /// Step 0+1: fixes info (denomination, current list version, expiries)
  /// and sends the signer commitment. The client pays `denomination` fiat
  /// out of band.
  Outcome<WithdrawalOffer> start_withdrawal(Cents denomination, Timestamp now);

  /// Escrowed variant (src/escrow): the broker — who knows the payer from
  /// the payment rails — embeds Enc_authority(identity) into the coin's
  /// public info before blind-signing, making the coin traceable by the
  /// escrow authority (and only it).  See escrow.h for the anonymity
  /// trade-off.
  Outcome<WithdrawalOffer> start_withdrawal_escrowed(
      Cents denomination, const std::string& client_identity,
      const bn::BigInt& escrow_authority_y, Timestamp now);
  /// Step 3: answers the blinded challenge.  Each session is signed at most
  /// once, but the call is idempotent: retransmitting the *same* challenge
  /// (a client retry after a lost response) re-issues the recorded response;
  /// only a *different* challenge — an attempt at a second signature — is
  /// refused.
  Outcome<blindsig::SignerResponse> finish_withdrawal(std::uint64_t session,
                                                      const bn::BigInt& e);

  // ---- deposit (Algorithm 3) ----

  struct DepositReceipt {
    Cents credited = 0;
    /// True when this deposit was paid out of the witness's security
    /// deposit (double-signed coin, case 2-b).
    bool paid_from_witness_deposit = false;
  };
  Outcome<DepositReceipt> deposit(const MerchantId& depositor,
                                  const SignedTranscript& st, Timestamp now);

  // ---- renewal (Algorithm 4) ----

  struct RenewalOffer {
    std::uint64_t session;
    CoinInfo info;
    blindsig::SignerFirstMessage first;
  };
  /// Step 0+1: like withdrawal, but the new coin is paid for by the old
  /// one, which is checked and consumed in finish_renewal.
  Outcome<RenewalOffer> start_renewal(Cents denomination, Timestamp now);

  /// Step 2+3: the client presents the blinded challenge for the new coin
  /// together with the old coin (including any transfer chain) and a
  /// representation proof for its *current* commitments (challenge derived
  /// from (old coin, "renewal", datetime)).  On success the old coin is
  /// marked renewed and the response for the new coin is returned.  If the
  /// old coin was already deposited or renewed, returns a refusal; the
  /// extracted proof is stored and queryable.
  Outcome<blindsig::SignerResponse> finish_renewal(
      std::uint64_t session, const bn::BigInt& e, const Coin& old_coin,
      const nizk::Response& proof, Timestamp datetime, Timestamp now);

  /// Challenge used for renewal proofs (exposed so wallets compute the
  /// same value): d* = H0(old coin, "renewal", datetime).
  bn::BigInt renewal_challenge(const Coin& coin, Timestamp datetime) const;

  // ---- denomination exchange (making change) ----
  //
  // An extension in the spirit of §8's divisibility discussion: a client
  // swaps one coin for several smaller ones by *paying the coin to the
  // broker* — a regular witness-countersigned payment transcript with
  // merchant = kBrokerCounterparty — and withdrawing the change.  The
  // witness flow gives the exchange the same real-time double-spend
  // protection as any payment; the consumed coin enters the deposit
  // database, so a witness that also countersigned a merchant spend of the
  // same coin is caught and charged exactly as in Algorithm 3 case 2-b.

  /// Consumes the coin in `st` (merchant must be kBrokerCounterparty; all
  /// deposit-grade checks apply) and opens one withdrawal per entry of
  /// `denominations`, whose sum must equal the coin's value.  The client
  /// completes each returned offer exactly like a normal withdrawal.
  Outcome<std::vector<WithdrawalOffer>> exchange(
      const SignedTranscript& st, const std::vector<Cents>& denominations,
      Timestamp now);

  // ---- accounting / audit queries ----

  /// Witness-fault proofs collected from double deposits.  Returns a
  /// reference into live state: callers must hold no concurrent writers
  /// (quiescent audit reads only), hence the analysis opt-out.
  const std::vector<WitnessFaultProof>& witness_faults() const
      P2P_NO_THREAD_SAFETY_ANALYSIS {
    return witness_faults_;
  }
  /// Double-spend proofs extracted during renewal refusals.  Same
  /// quiescence contract as witness_faults().
  const std::vector<DoubleSpendProof>& renewal_fraud_proofs() const
      P2P_NO_THREAD_SAFETY_ANALYSIS {
    return renewal_fraud_proofs_;
  }
  std::uint64_t coins_issued() const {
    sync::MutexLock lock(mu_);
    return coins_issued_;
  }
  std::uint64_t coins_deposited() const {
    sync::MutexLock lock(mu_);
    return deposits_.size();
  }
  std::int64_t fiat_collected() const {
    sync::MutexLock lock(mu_);
    return fiat_collected_;
  }
  std::int64_t fiat_paid_out() const {
    sync::MutexLock lock(mu_);
    return fiat_paid_out_;
  }

  // ---- crash recovery --------------------------------------------------
  //
  // Losing the deposit database would let every outstanding coin be
  // deposited twice; losing the accounts would erase merchant balances.
  // snapshot_state() captures all durable state (including the signing
  // secret — at-rest encryption is a deployment concern); restore_state()
  // rebuilds a broker atomically.  Open withdrawal/renewal sessions are
  // deliberately NOT persisted: an unanswered session is simply retried by
  // the client, and never answering twice is exactly the safe failure mode.

  std::vector<std::uint8_t> snapshot_state() const;
  /// Throws wire::DecodeError on malformed input; state unchanged on throw.
  /// If a store is attached, the restored state is checkpointed into it.
  void restore_state(std::span<const std::uint8_t> snapshot);

  // ---- durable store ---------------------------------------------------
  //
  // With a store attached, every mutating entry point journals one atomic
  // delta record describing all of its state changes and commits it
  // (group-commit fsync) before returning — an acknowledged deposit,
  // signature or table publication survives a process kill.  Recovery is
  // checkpoint restore + delta replay; replay is last-wins per key, so
  // reopening after any crash point reproduces exactly the acknowledged
  // prefix of operations.  Open sessions stay unpersisted as before.

  /// Attaches a store while the broker is quiescent (no concurrent
  /// callers).  An empty store receives a genesis checkpoint (making the
  /// signing key itself durable); a non-empty store is recovered from:
  /// the broker's entire state is replaced by checkpoint + deltas.
  void attach_store(store::Store& store);
  /// Compacts the attached store to one checkpoint of the current state.
  /// No-op when detached.
  void checkpoint_store();
  bool has_store() const { return store_ != nullptr; }

  /// Serializes a published table into the immutable mmap-friendly
  /// store::table_file format (see WitnessTable::to_table_file).  Throws
  /// std::invalid_argument for an unpublished version.
  std::vector<std::uint8_t> export_table_file(std::uint32_t version) const;

 private:
  struct DepositRecord {
    SignedTranscript st;
    MerchantId depositor;
  };
  struct RenewalRecord {
    Coin coin;
    nizk::Response proof;
    Timestamp datetime;
  };

  CoinInfo make_info(Cents denomination, Timestamp now) const
      P2P_REQUIRES(mu_);
  /// Lock-free table lookup for use inside already-locked entry points.
  const WitnessTable* table_unlocked(std::uint32_t version) const
      P2P_REQUIRES(mu_);
  /// Validates witness entries against the broker's own published table.
  Outcome<std::monostate> check_witness_assignment(
      const Coin& coin, const Hash256& coin_hash) const P2P_REQUIRES(mu_);
  /// Deposit-grade validation of a signed transcript (windows, own blind
  /// signature, witness assignment, NIZK, >= witness_k valid endorsements).
  /// Returns the endorsing witnesses on success.
  Outcome<std::vector<MerchantId>> validate_signed_transcript(
      const SignedTranscript& st, const Hash256& coin_hash,
      Timestamp now) const P2P_REQUIRES(mu_);

  // ---- store journaling (see attach_store) ----
  //
  // Each mutating entry point gathers its sub-deltas into one wire::Writer
  // and appends them as ONE log record, so a torn tail can never persist
  // half an operation.  Sub-delta appliers are last-wins per key.
  std::vector<std::uint8_t> snapshot_locked() const P2P_REQUIRES(mu_);
  void restore_locked(std::span<const std::uint8_t> snapshot)
      P2P_REQUIRES(mu_);
  /// Re-applies one journaled delta record (recovery replay).
  void apply_delta(std::span<const std::uint8_t> delta) P2P_REQUIRES(mu_);
  /// Appends `w` as one delta record; no-op when no store is attached.
  void journal(const wire::Writer& w) P2P_REQUIRES(mu_);
  void delta_account(wire::Writer& w, const MerchantId& id) const
      P2P_REQUIRES(mu_);
  void delta_counters(wire::Writer& w) const P2P_REQUIRES(mu_);
  void delta_deposit(wire::Writer& w, const Hash256& hash) const
      P2P_REQUIRES(mu_);
  void delta_renewal(wire::Writer& w, const Hash256& hash) const
      P2P_REQUIRES(mu_);
  static void delta_table(wire::Writer& w, const WitnessTable& table);
  static void delta_witness_fault(wire::Writer& w,
                                  const WitnessFaultProof& fault);
  static void delta_fraud_proof(wire::Writer& w,
                                const DoubleSpendProof& proof);

  group::SchnorrGroup grp_;  // immutable shared parameters: no guard
  bn::Rng& rng_;             // external; only drawn from under mu_
  /// Set by attach_store while quiescent (same contract as the key pair in
  /// public_key()), then only read — so unguarded reads never race.
  store::Store* store_ = nullptr;
  /// Serializes every public entry point (see the thread-safety note in
  /// the header comment).  Private helpers assume it is already held.
  mutable sync::Mutex mu_{"ecash.broker", sync::level::kService};

  Config config_ P2P_GUARDED_BY(mu_);
  blindsig::BlindSigner signer_ P2P_GUARDED_BY(mu_);  // coin key (x, y)
  sig::KeyPair identity_ P2P_GUARDED_BY(mu_);  // table/entry signing key

  std::map<MerchantId, MerchantAccount> accounts_ P2P_GUARDED_BY(mu_);
  /// Deque, not vector: publish_witness_table appends while clients hold
  /// references from current_table()/table(), which must stay valid.
  std::deque<WitnessTable> tables_ P2P_GUARDED_BY(mu_);  // index i = v i+1

  std::uint64_t next_session_ P2P_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, blindsig::BlindSigner::Session> withdrawal_sessions_
      P2P_GUARDED_BY(mu_);
  std::map<std::uint64_t, blindsig::BlindSigner::Session> renewal_sessions_
      P2P_GUARDED_BY(mu_);
  /// Answered withdrawal sessions, kept so a retried identical challenge is
  /// answered idempotently (exactly one signature per session either way).
  /// Like open sessions, not persisted across crashes: after a restart the
  /// client's retry gets kStaleRequest and simply withdraws afresh.
  struct CompletedWithdrawal {
    bn::BigInt e;
    blindsig::SignerResponse response;
  };
  std::map<std::uint64_t, CompletedWithdrawal> completed_withdrawals_
      P2P_GUARDED_BY(mu_);

  // Keyed by h(bare coin).
  std::map<Hash256, DepositRecord> deposits_ P2P_GUARDED_BY(mu_);
  std::map<Hash256, RenewalRecord> renewals_ P2P_GUARDED_BY(mu_);

  std::vector<WitnessFaultProof> witness_faults_ P2P_GUARDED_BY(mu_);
  std::vector<DoubleSpendProof> renewal_fraud_proofs_ P2P_GUARDED_BY(mu_);
  std::uint64_t coins_issued_ P2P_GUARDED_BY(mu_) = 0;
  std::int64_t fiat_collected_ P2P_GUARDED_BY(mu_) = 0;
  std::int64_t fiat_paid_out_ P2P_GUARDED_BY(mu_) = 0;
};

}  // namespace p2pcash::ecash
