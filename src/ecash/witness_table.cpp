#include "ecash/witness_table.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace p2pcash::ecash {

using bn::BigInt;

std::vector<std::uint8_t> SignedWitnessEntry::signed_payload() const {
  wire::Writer w;
  w.put_string("p2pcash/witness-entry/v1");
  w.put_u32(version);
  w.put_i64(published_at);
  w.put_string(merchant);
  w.put_bigint(witness_key.y);
  w.put_bigint(lo);
  w.put_bigint(hi);
  return w.take();
}

void SignedWitnessEntry::encode(wire::Writer& w) const {
  w.put_u32(version);
  w.put_i64(published_at);
  w.put_string(merchant);
  w.put_bigint(witness_key.y);
  w.put_bigint(lo);
  w.put_bigint(hi);
  w.put_bigint(broker_sig.e);
  w.put_bigint(broker_sig.s);
}

SignedWitnessEntry SignedWitnessEntry::decode(wire::Reader& r) {
  SignedWitnessEntry e;
  e.version = r.get_u32();
  e.published_at = r.get_i64();
  e.merchant = r.get_string();
  e.witness_key.y = r.get_bigint();
  e.lo = r.get_bigint();
  e.hi = r.get_bigint();
  e.broker_sig.e = r.get_bigint();
  e.broker_sig.s = r.get_bigint();
  return e;
}

WitnessTable WitnessTable::build(std::uint32_t version, Timestamp published_at,
                                 const std::vector<Participant>& participants,
                                 const sig::KeyPair& broker_key, bn::Rng& rng) {
  if (participants.empty())
    throw std::invalid_argument("WitnessTable::build: no participants");
  std::uint64_t total_weight = 0;
  for (const auto& p : participants) {
    if (p.weight == 0)
      throw std::invalid_argument("WitnessTable::build: zero weight");
    if (p.weight > std::numeric_limits<std::uint64_t>::max() - total_weight)
      throw std::overflow_error("WitnessTable::build: total weight overflow");
    total_weight += p.weight;
  }
  const BigInt space = BigInt{1} << kRangeBits;
  WitnessTable table;
  table.version_ = version;
  table.published_at_ = published_at;
  BigInt cursor{0};
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const auto& p = participants[i];
    cumulative += p.weight;
    // hi = floor(space * cumulative / total): exact cover, no gaps/overlap.
    BigInt hi = i + 1 == participants.size()
                    ? space
                    : (space * BigInt{cumulative}) / BigInt{total_weight};
    SignedWitnessEntry entry;
    entry.version = version;
    entry.published_at = published_at;
    entry.merchant = p.merchant;
    entry.witness_key = p.key;
    entry.lo = cursor;
    entry.hi = hi;
    entry.broker_sig = broker_key.sign(entry.signed_payload(), rng);
    cursor = entry.hi;
    table.entries_.push_back(std::move(entry));
  }
  return table;
}

std::optional<SignedWitnessEntry> WitnessTable::lookup(
    const BigInt& point) const {
  // Entries are sorted by lo; binary-search the containing range.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), point,
      [](const BigInt& value, const SignedWitnessEntry& e) {
        return value < e.lo;
      });
  if (it == entries_.begin()) return std::nullopt;
  --it;
  if (!it->contains(point)) return std::nullopt;
  return *it;
}

std::optional<SignedWitnessEntry> WitnessTable::find(
    const MerchantId& merchant) const {
  for (const auto& e : entries_) {
    if (e.merchant == merchant) return e;
  }
  return std::nullopt;
}

bool WitnessTable::validate(const group::SchnorrGroup& grp,
                            const sig::PublicKey& broker_key) const {
  if (entries_.empty()) return false;
  const BigInt space = BigInt{1} << kRangeBits;
  BigInt cursor{0};
  for (const auto& e : entries_) {
    if (e.version != version_ || e.published_at != published_at_) return false;
    if (e.lo != cursor || e.hi <= e.lo) return false;
    if (!sig::verify(grp, broker_key, e.signed_payload(), e.broker_sig))
      return false;
    cursor = e.hi;
  }
  return cursor == space;
}

void WitnessTable::encode(wire::Writer& w) const {
  w.put_u32(version_);
  w.put_i64(published_at_);
  w.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) e.encode(w);
}

std::vector<std::uint8_t> WitnessTable::to_table_file() const {
  static_assert(store::kTableKeyBytes == kRangeBits / 8,
                "table-file keys must hold a full range point");
  store::TableFileBuilder builder(version_,
                                  static_cast<std::uint64_t>(published_at_));
  for (const auto& e : entries_) {
    store::TableKey key{};
    auto lo = e.lo.to_bytes_be_padded(store::kTableKeyBytes);
    std::copy(lo.begin(), lo.end(), key.begin());
    builder.add(key, wire::encode(e));
  }
  return builder.build();
}

std::optional<SignedWitnessEntry> WitnessTable::lookup_table_file(
    const store::TableFileView& view, const BigInt& point) {
  // Points at or beyond 2^kRangeBits don't fit a key; no range holds them.
  if (point.bit_length() > kRangeBits || point < BigInt{0})
    return std::nullopt;
  store::TableKey key{};
  auto bytes = point.to_bytes_be_padded(store::kTableKeyBytes);
  std::copy(bytes.begin(), bytes.end(), key.begin());
  auto idx = view.predecessor(key);
  if (!idx) return std::nullopt;
  auto payload = view.payload(*idx);
  wire::Reader r(payload);
  SignedWitnessEntry entry = SignedWitnessEntry::decode(r);
  r.expect_end();
  if (!entry.contains(point)) return std::nullopt;
  return entry;
}

WitnessTable WitnessTable::decode(wire::Reader& r) {
  WitnessTable t;
  t.version_ = r.get_u32();
  t.published_at_ = r.get_i64();
  std::uint32_t n = r.get_u32();
  if (n > 1u << 20)  // sanity bound against huge-reserve DoS
    throw wire::DecodeError("WitnessTable: too many entries");
  t.entries_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    t.entries_.push_back(SignedWitnessEntry::decode(r));
  return t;
}

}  // namespace p2pcash::ecash
