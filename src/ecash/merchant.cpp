#include "ecash/merchant.h"

#include <algorithm>
#include <utility>

namespace p2pcash::ecash {

Merchant::Merchant(group::SchnorrGroup grp, sig::PublicKey broker_key,
                   MerchantId id, sig::KeyPair key, bn::Rng& rng)
    : grp_(std::move(grp)),
      broker_key_(std::move(broker_key)),
      id_(std::move(id)),
      key_(std::move(key)),
      rng_(rng) {}

Outcome<std::monostate> Merchant::receive_payment(
    const PaymentTranscript& transcript,
    const std::vector<WitnessCommitment>& commitments, Timestamp now) {
  if (transcript.merchant != id_)
    return Refusal{RefusalReason::kBadProof,
                   "transcript names a different merchant"};

  // "The merchant rejects ... if it has already received payment with the
  // same coin."
  const Hash256 coin_hash = transcript.coin.bare.coin_hash();
  if (seen_coins_.contains(coin_hash) || pending_.contains(coin_hash))
    return Refusal{RefusalReason::kDoubleSpent,
                   "coin already presented at this merchant"};

  // Full coin verification (broker blind signature, witness assignment,
  // entry signatures, expiry).
  if (auto ok = verify_coin(grp_, broker_key_, transcript.coin, now); !ok)
    return ok.refusal();

  // The NIZK response: A * B^d == g1^r1 g2^r2 with d bound to us and now.
  if (!verify_transcript_proof(grp_, transcript))
    return Refusal{RefusalReason::kBadProof, "NIZK response invalid"};

  // Witness commitments: need at least witness_k, each from a distinct
  // assigned witness, covering this coin, bound to us via the nonce, alive,
  // and properly signed.
  const CoinInfo& info = transcript.coin.bare.info;
  const Hash256 nonce = payment_nonce(transcript.salt, id_);
  std::vector<MerchantId> committed;
  for (const auto& commitment : commitments) {
    if (commitment.coin_hash != coin_hash)
      return Refusal{RefusalReason::kBadProof,
                     "commitment covers another coin"};
    if (commitment.nonce != nonce)
      return Refusal{RefusalReason::kBadNonce,
                     "commitment nonce does not bind this merchant"};
    if (now >= commitment.expires)
      return Refusal{RefusalReason::kStaleRequest, "commitment expired"};
    auto entry = std::find_if(transcript.coin.witnesses.begin(),
                              transcript.coin.witnesses.end(),
                              [&](const SignedWitnessEntry& e) {
                                return e.merchant == commitment.witness;
                              });
    if (entry == transcript.coin.witnesses.end())
      return Refusal{RefusalReason::kWrongWitness,
                     "commitment from a non-assigned witness"};
    if (std::find(committed.begin(), committed.end(), commitment.witness) !=
        committed.end())
      return Refusal{RefusalReason::kBadProof, "duplicate commitment witness"};
    if (!sig::verify(grp_, entry->witness_key, commitment.signed_payload(),
                     commitment.witness_sig))
      return Refusal{RefusalReason::kBadSignature,
                     "witness commitment signature invalid"};
    committed.push_back(commitment.witness);
  }
  if (committed.size() < info.witness_k)
    return Refusal{RefusalReason::kBadProof,
                   "insufficient witness commitments"};

  pending_.emplace(coin_hash,
                   PendingPayment{transcript, commitments, {}});
  return std::monostate{};
}

Outcome<bool> Merchant::add_endorsement(const Hash256& coin_hash,
                                        const WitnessEndorsement& endorsement) {
  auto it = pending_.find(coin_hash);
  if (it == pending_.end())
    return Refusal{RefusalReason::kStaleRequest, "no pending payment"};
  PendingPayment& payment = it->second;

  auto entry = std::find_if(payment.transcript.coin.witnesses.begin(),
                            payment.transcript.coin.witnesses.end(),
                            [&](const SignedWitnessEntry& e) {
                              return e.merchant == endorsement.witness;
                            });
  if (entry == payment.transcript.coin.witnesses.end())
    return Refusal{RefusalReason::kWrongWitness,
                   "endorsement from a non-assigned witness"};
  bool already = std::any_of(payment.endorsements.begin(),
                             payment.endorsements.end(),
                             [&](const WitnessEndorsement& e) {
                               return e.witness == endorsement.witness;
                             });
  // A duplicated network delivery, not an attack: the witness re-issued an
  // identical endorsement on a retried sign request.  kDuplicate lets the
  // actor layer suppress it instead of refusing the whole payment.
  if (already)
    return Refusal{RefusalReason::kDuplicate, "duplicate endorsement"};
  if (!sig::verify(grp_, entry->witness_key,
                   payment.transcript.signed_payload(),
                   endorsement.signature))
    return Refusal{RefusalReason::kBadSignature,
                   "witness endorsement signature invalid"};

  payment.endorsements.push_back(endorsement);
  if (payment.endorsements.size() <
      payment.transcript.coin.bare.info.witness_k)
    return false;  // keep collecting

  // Enough endorsements: deliver service, queue the deposit.
  deposit_queue_.push_back(
      SignedTranscript{payment.transcript, payment.endorsements});
  seen_coins_.emplace(coin_hash, std::monostate{});
  pending_.erase(it);
  ++services_delivered_;
  return true;
}

Outcome<DoubleSpendProof> Merchant::handle_double_spend(
    const Hash256& coin_hash, const DoubleSpendProof& proof) {
  auto it = pending_.find(coin_hash);
  if (it == pending_.end())
    return Refusal{RefusalReason::kStaleRequest, "no pending payment"};
  const PaymentTranscript& t = it->second.transcript;
  // The proof must actually open this coin's commitments — otherwise the
  // witness is stonewalling with garbage.
  const auto current = current_commitments(t.coin);
  if (proof.coin_hash != coin_hash || proof.a != current.a ||
      proof.b != current.b || !proof.verify(grp_))
    return Refusal{RefusalReason::kBadProof,
                   "double-spend proof does not verify"};
  pending_.erase(it);
  ++double_spends_blocked_;
  return proof;
}

const PaymentTranscript* Merchant::pending(const Hash256& coin_hash) const {
  auto it = pending_.find(coin_hash);
  return it == pending_.end() ? nullptr : &it->second.transcript;
}

void Merchant::abandon(const Hash256& coin_hash) { pending_.erase(coin_hash); }

std::size_t Merchant::drop_pending() {
  const std::size_t dropped = pending_.size();
  pending_.clear();
  return dropped;
}

std::vector<SignedTranscript> Merchant::drain_deposit_queue() {
  return std::exchange(deposit_queue_, {});
}

}  // namespace p2pcash::ecash
