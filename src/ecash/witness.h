// witness.h — the witness role: real-time double-spending prevention.
//
// Every merchant runs a WitnessService for the coins whose witness point
// falls in its published range.  The service implements steps 1–2 and 4–5
// of the payment protocol (paper Algorithm 2):
//
//   * request_commitment: issue a signed promise (coin_hash, nonce, h(v),
//     t_e, "commit") to countersign this coin's next valid transcript.  Only
//     one live commitment per coin at a time; v proves, after the fact, what
//     the witness knew when it committed (fresh randomness vs. evidence of a
//     prior spend) — the race-condition audit hook of §5.
//   * sign_transcript: verify the coin and its NIZK, enforce the nonce
//     binding, and either countersign (first spend) or answer with a
//     publicly verifiable DoubleSpendProof extracted from the two
//     conflicting transcripts.
//
// After detecting a double spend the witness keeps only the extracted
// representations and the coin hash, "dropping all transcripts", so it can
// prove double-spending without revealing where the coin was first spent.
//
// Thread safety: a witness serves commitment/sign requests from many
// payers at once, and its whole purpose is an atomic check-then-sign —
// two racing spends of one coin must yield exactly one endorsement.  Every
// public entry point therefore takes an internal mutex.  The shared `rng`
// is only used under that mutex, but must not be used concurrently by
// other components.

#pragma once

#include <map>
#include <variant>

#include "ecash/transcript.h"
#include "sync/annotated.h"

namespace p2pcash::ecash {

/// Outcome of a sign_transcript call: a countersignature, or proof that the
/// coin was already spent.
using SignResult = std::variant<WitnessEndorsement, DoubleSpendProof>;

class WitnessService {
 public:
  /// `rng` must outlive the service.
  WitnessService(group::SchnorrGroup grp, sig::PublicKey broker_key,
                 MerchantId id, sig::KeyPair key, bn::Rng& rng);

  const MerchantId& id() const { return id_; }
  const sig::PublicKey& public_key() const { return key_.public_key(); }

  /// How long a commitment stays live (t_e - now). Default 30 s.
  void set_commitment_ttl(Timestamp ttl_ms) {
    sync::MutexLock lock(mu_);
    commitment_ttl_ = ttl_ms;
  }
  Timestamp commitment_ttl() const {
    sync::MutexLock lock(mu_);
    return commitment_ttl_;
  }

  /// Step 1 -> 2.  Refuses with kCommitmentOutstanding while an unexpired
  /// commitment for the same coin exists ("the witness must not issue new
  /// commitments on this coin_hash until this commitment expires").
  Outcome<WitnessCommitment> request_commitment(const Hash256& coin_hash,
                                                const Hash256& nonce,
                                                Timestamp now);

  /// Step 4 -> 5.  On first valid spend: endorsement. On a second spend
  /// with a different challenge: DoubleSpendProof. Refusals: wrong witness,
  /// invalid coin/proof, missing or mismatched commitment (bad nonce).
  Outcome<SignResult> sign_transcript(const PaymentTranscript& transcript,
                                      Timestamp now);

  /// Conflict resolution (paper §5): reveal the value v committed under
  /// h(v) so an arbiter can decide whether the witness knew of a prior
  /// spend when it committed.  Reveals the *latest* commitment for the coin.
  Outcome<CommittedValue> reveal_committed_value(const Hash256& coin_hash);

  /// Transferability extension: countersigns an ownership hand-off.  The
  /// presented coin (with its chain so far) must match this witness's
  /// recorded chain; `response` must open the coin's current commitments
  /// against transfer_challenge(coin, new_a, new_b, datetime).  On a stale
  /// chain or an already-spent coin the conflicting responses let us
  /// extract the current owner's secrets — the same self-incrimination as
  /// double spending.
  Outcome<std::variant<TransferLink, DoubleSpendProof>> sign_transfer(
      const Coin& coin, const bn::BigInt& new_a, const bn::BigInt& new_b,
      const nizk::Response& response, Timestamp datetime, Timestamp now);

  /// True if this witness has recorded a double-spend for the coin.
  bool has_double_spend_record(const Hash256& coin_hash) const;
  /// Proofs extracted against *stale* owners of transferred coins (their
  /// old commitments).  These incriminate the previous owner without
  /// invalidating the coin for its rightful current holder.  Returns a
  /// reference into live state: quiescent audit reads only, hence the
  /// analysis opt-out.
  const std::vector<DoubleSpendProof>& stale_owner_evidence() const
      P2P_NO_THREAD_SAFETY_ANALYSIS {
    return stale_owner_evidence_;
  }
  /// Number of coins this witness has countersigned (its "performance",
  /// which the broker feeds back into range sizes).
  std::uint64_t coins_signed() const {
    sync::MutexLock lock(mu_);
    return coins_signed_;
  }

  /// Fault injection for tests/benches: a faulty witness signs transcripts
  /// unconditionally, never reporting double-spends (the misbehaviour the
  /// broker's deposit protocol must catch and charge).
  void set_faulty(bool faulty) {
    sync::MutexLock lock(mu_);
    faulty_ = faulty;
  }

  // ---- crash recovery -------------------------------------------------
  //
  // A witness that forgets its spent-coin state after a crash would sign a
  // coin twice and be charged for it (Algorithm 3 case 2-b), so the state
  // must survive restarts.  snapshot_state() captures commitments, spent
  // records and double-spend proofs in canonical bytes; restore_state()
  // rebuilds them on a freshly constructed service (same key).  In a real
  // deployment the snapshot would be written behind a write-ahead log;
  // here durability is the caller's concern.

  /// Serializes all double-spend-relevant state.
  std::vector<std::uint8_t> snapshot_state() const;
  /// Replaces current state with a snapshot. Throws wire::DecodeError on
  /// malformed input.
  void restore_state(std::span<const std::uint8_t> snapshot);

 private:
  struct CommitmentRecord {
    WitnessCommitment commitment;
    CommittedValue value;
    /// Set once the committed transaction's transcript has been signed: the
    /// promise is fulfilled, so a new commitment may be issued (a later
    /// transcript can only trigger double-spend extraction).
    bool consumed = false;
  };
  struct SpentRecord {
    PaymentTranscript transcript;
    WitnessEndorsement endorsement;  // reissued on idempotent retries
  };
  struct DoubleSpentRecord {
    DoubleSpendProof proof;
  };

  /// Finds this witness's entry index in the coin, verifying the witness
  /// point; nullopt if the coin is not ours.
  std::optional<std::size_t> own_entry_index(const Coin& coin,
                                             const Hash256& coin_hash) const
      P2P_REQUIRES(mu_);

  group::SchnorrGroup grp_;    // immutable shared parameters: no guard
  sig::PublicKey broker_key_;  // fixed at construction
  MerchantId id_;              // fixed at construction
  sig::KeyPair key_;           // fixed at construction
  bn::Rng& rng_;               // external; only drawn from under mu_
  /// Serializes every public entry point; private helpers assume held.
  mutable sync::Mutex mu_{"ecash.witness", sync::level::kService};
  Timestamp commitment_ttl_ P2P_GUARDED_BY(mu_) = 30'000;
  bool faulty_ P2P_GUARDED_BY(mu_) = false;
  std::uint64_t coins_signed_ P2P_GUARDED_BY(mu_) = 0;

  /// Verifies everything about a presented coin except spend state; on
  /// success returns the index of our witness entry.
  Outcome<std::size_t> check_presented_coin(const Coin& coin,
                                            const Hash256& coin_hash,
                                            Timestamp now) const
      P2P_REQUIRES(mu_);
  /// The chain we have accepted for this coin (empty if never transferred).
  const std::vector<TransferLink>& recorded_chain(
      const Hash256& coin_hash) const P2P_REQUIRES(mu_);

  std::map<Hash256, CommitmentRecord> commitments_ P2P_GUARDED_BY(mu_);
  std::map<Hash256, SpentRecord> spent_ P2P_GUARDED_BY(mu_);
  std::map<Hash256, DoubleSpentRecord> double_spent_ P2P_GUARDED_BY(mu_);
  std::map<Hash256, std::vector<TransferLink>> chains_ P2P_GUARDED_BY(mu_);
  std::vector<DoubleSpendProof> stale_owner_evidence_ P2P_GUARDED_BY(mu_);
};

}  // namespace p2pcash::ecash
