// witness.h — the witness role: real-time double-spending prevention.
//
// Every merchant runs a WitnessService for the coins whose witness point
// falls in its published range.  The service implements steps 1–2 and 4–5
// of the payment protocol (paper Algorithm 2):
//
//   * request_commitment: issue a signed promise (coin_hash, nonce, h(v),
//     t_e, "commit") to countersign this coin's next valid transcript.  Only
//     one live commitment per coin at a time; v proves, after the fact, what
//     the witness knew when it committed (fresh randomness vs. evidence of a
//     prior spend) — the race-condition audit hook of §5.
//   * sign_transcript: verify the coin and its NIZK, enforce the nonce
//     binding, and either countersign (first spend) or answer with a
//     publicly verifiable DoubleSpendProof extracted from the two
//     conflicting transcripts.
//
// After detecting a double spend the witness keeps only the extracted
// representations and the coin hash, "dropping all transcripts", so it can
// prove double-spending without revealing where the coin was first spent.
//
// Thread safety: a witness serves commitment/sign requests from many
// payers at once, and its whole purpose is an atomic check-then-sign —
// two racing spends of one coin must yield exactly one endorsement.  The
// coin-keyed state (commitments, spent records, double-spend proofs,
// transfer chains) is sharded into stripes by coin-hash prefix, each with
// its own mutex, so concurrent payments of DIFFERENT coins proceed in
// parallel while two racing spends of ONE coin still serialize on that
// coin's stripe.  The expensive cryptography (coin checks, NIZK/signature
// verification) runs on immutable inputs with no lock held; only the
// state transition itself happens under the stripe, with the spend state
// re-checked there (check-outside / decide-under-lock).  A service-level
// mutex guards the scalar config and accounting fields, and the shared
// `rng` has a dedicated guard so countersignings on different stripes can
// draw from it safely; it must not be used concurrently by other
// components.

#pragma once

#include <array>
#include <map>
#include <span>
#include <variant>

#include "ecash/transcript.h"
#include "store/store.h"
#include "sync/annotated.h"

namespace p2pcash::ecash {

/// Outcome of a sign_transcript call: a countersignature, or proof that the
/// coin was already spent.
using SignResult = std::variant<WitnessEndorsement, DoubleSpendProof>;

class WitnessService {
 public:
  /// `rng` must outlive the service.
  WitnessService(group::SchnorrGroup grp, sig::PublicKey broker_key,
                 MerchantId id, sig::KeyPair key, bn::Rng& rng);

  const MerchantId& id() const { return id_; }
  const sig::PublicKey& public_key() const { return key_.public_key(); }

  /// How long a commitment stays live (t_e - now). Default 30 s.
  void set_commitment_ttl(Timestamp ttl_ms) {
    sync::MutexLock lock(mu_);
    commitment_ttl_ = ttl_ms;
  }
  Timestamp commitment_ttl() const {
    sync::MutexLock lock(mu_);
    return commitment_ttl_;
  }

  /// Step 1 -> 2.  Refuses with kCommitmentOutstanding while an unexpired
  /// commitment for the same coin exists ("the witness must not issue new
  /// commitments on this coin_hash until this commitment expires").
  Outcome<WitnessCommitment> request_commitment(const Hash256& coin_hash,
                                                const Hash256& nonce,
                                                Timestamp now);

  /// Step 4 -> 5.  On first valid spend: endorsement. On a second spend
  /// with a different challenge: DoubleSpendProof. Refusals: wrong witness,
  /// invalid coin/proof, missing or mismatched commitment (bad nonce).
  Outcome<SignResult> sign_transcript(const PaymentTranscript& transcript,
                                      Timestamp now);

  /// Batch form of sign_transcript: the payment NIZKs of all transcripts
  /// that pass the per-coin checks are verified with ONE random-linear-
  /// combination multi-exp (nizk::batch_verify_responses), bisecting on
  /// failure so each bad proof is refused individually while the rest
  /// proceed.  Results are index-aligned with `transcripts` and
  /// decision-compatible with calling sign_transcript per item (the batch
  /// is one verification wave: two transcripts of the SAME coin in one
  /// batch resolve in index order, exactly as sequential calls would).
  std::vector<Outcome<SignResult>> sign_transcript_batch(
      std::span<const PaymentTranscript> transcripts, Timestamp now);

  /// Conflict resolution (paper §5): reveal the value v committed under
  /// h(v) so an arbiter can decide whether the witness knew of a prior
  /// spend when it committed.  Reveals the *latest* commitment for the coin.
  Outcome<CommittedValue> reveal_committed_value(const Hash256& coin_hash);

  /// Transferability extension: countersigns an ownership hand-off.  The
  /// presented coin (with its chain so far) must match this witness's
  /// recorded chain; `response` must open the coin's current commitments
  /// against transfer_challenge(coin, new_a, new_b, datetime).  On a stale
  /// chain or an already-spent coin the conflicting responses let us
  /// extract the current owner's secrets — the same self-incrimination as
  /// double spending.
  Outcome<std::variant<TransferLink, DoubleSpendProof>> sign_transfer(
      const Coin& coin, const bn::BigInt& new_a, const bn::BigInt& new_b,
      const nizk::Response& response, Timestamp datetime, Timestamp now);

  /// True if this witness has recorded a double-spend for the coin.
  bool has_double_spend_record(const Hash256& coin_hash) const;
  /// Proofs extracted against *stale* owners of transferred coins (their
  /// old commitments).  These incriminate the previous owner without
  /// invalidating the coin for its rightful current holder.  Returns a
  /// reference into live state: quiescent audit reads only, hence the
  /// analysis opt-out.
  const std::vector<DoubleSpendProof>& stale_owner_evidence() const
      P2P_NO_THREAD_SAFETY_ANALYSIS {
    return stale_owner_evidence_;
  }
  /// Number of coins this witness has countersigned (its "performance",
  /// which the broker feeds back into range sizes).
  std::uint64_t coins_signed() const {
    sync::MutexLock lock(mu_);
    return coins_signed_;
  }

  /// Fault injection for tests/benches: a faulty witness signs transcripts
  /// unconditionally, never reporting double-spends (the misbehaviour the
  /// broker's deposit protocol must catch and charge).
  void set_faulty(bool faulty) {
    sync::MutexLock lock(mu_);
    faulty_ = faulty;
  }

  // ---- crash recovery -------------------------------------------------
  //
  // A witness that forgets its spent-coin state after a crash would sign a
  // coin twice and be charged for it (Algorithm 3 case 2-b), so the state
  // must survive restarts.  snapshot_state() captures commitments, spent
  // records and double-spend proofs in canonical bytes; restore_state()
  // rebuilds them on a freshly constructed service (same key).  In a real
  // deployment the snapshot would be written behind a write-ahead log;
  // here durability is the caller's concern.

  /// Serializes all double-spend-relevant state.
  std::vector<std::uint8_t> snapshot_state() const;
  /// Replaces current state with a snapshot. Throws wire::DecodeError on
  /// malformed input.  If a store is attached, the restored state is
  /// checkpointed into it.
  void restore_state(std::span<const std::uint8_t> snapshot);

  // ---- durable store ---------------------------------------------------
  //
  // Same contract as Broker::attach_store: with a store attached, every
  // state transition (commitment issued, coin countersigned, double-spend
  // recorded, transfer chained) journals one atomic delta record under the
  // coin's stripe and commits it before the entry point returns.  An
  // acknowledged endorsement therefore survives a kill — the witness can
  // never be tricked into double-signing by crashing it.

  /// Attaches a store while the service is quiescent.  Empty store →
  /// genesis checkpoint; non-empty → state replaced by checkpoint + deltas.
  void attach_store(store::Store& store);
  /// Compacts the attached store to one checkpoint. No-op when detached.
  void checkpoint_store();
  bool has_store() const { return store_ != nullptr; }

 private:
  struct CommitmentRecord {
    WitnessCommitment commitment;
    CommittedValue value;
    /// Set once the committed transaction's transcript has been signed: the
    /// promise is fulfilled, so a new commitment may be issued (a later
    /// transcript can only trigger double-spend extraction).
    bool consumed = false;
  };
  struct SpentRecord {
    PaymentTranscript transcript;
    WitnessEndorsement endorsement;  // reissued on idempotent retries
  };
  struct DoubleSpentRecord {
    DoubleSpendProof proof;
  };

  /// Coin-keyed state is sharded by coin-hash prefix: the top kStripeBits
  /// of the hash's first byte pick the stripe.  Because the stripe index
  /// is the most-significant prefix, visiting stripes in order and each
  /// stripe's maps in order yields global Hash256 order — snapshot bytes
  /// are identical to the pre-sharding single-map layout.
  static constexpr std::size_t kStripeBits = 4;
  static constexpr std::size_t kStripeCount = std::size_t{1} << kStripeBits;

  struct Stripe {
    /// Every stripe shares one name and level (sync::level::kShard), so
    /// the runtime lock-order checker reports any attempt to hold two
    /// stripes at once — stripes may only be visited sequentially.
    mutable sync::Mutex mu{"ecash.witness_stripe", sync::level::kShard};
    std::map<Hash256, CommitmentRecord> commitments P2P_GUARDED_BY(mu);
    std::map<Hash256, SpentRecord> spent P2P_GUARDED_BY(mu);
    std::map<Hash256, DoubleSpentRecord> double_spent P2P_GUARDED_BY(mu);
    std::map<Hash256, std::vector<TransferLink>> chains P2P_GUARDED_BY(mu);
  };

  static std::size_t stripe_index(const Hash256& coin_hash) {
    return coin_hash[0] >> (8 - kStripeBits);
  }
  Stripe& stripe_for(const Hash256& coin_hash) {
    return stripes_[stripe_index(coin_hash)];
  }
  const Stripe& stripe_for(const Hash256& coin_hash) const {
    return stripes_[stripe_index(coin_hash)];
  }

  /// Finds this witness's entry index in the coin, verifying the witness
  /// point; nullopt if the coin is not ours.  Immutable inputs only.
  std::optional<std::size_t> own_entry_index(const Coin& coin,
                                             const Hash256& coin_hash) const;

  /// Verifies everything about a presented coin except spend state; on
  /// success returns the index of our witness entry.  Pure function of the
  /// coin and the service's immutable keys — called with no lock held.
  Outcome<std::size_t> check_presented_coin(const Coin& coin,
                                            const Hash256& coin_hash,
                                            Timestamp now) const;

  /// Lock-free-crypto fast path: answers a known double-spent coin with
  /// the stored proof and an identical retransmission with the stored
  /// endorsement; nullopt means the caller must verify and finish.
  std::optional<Outcome<SignResult>> sign_fast_path(
      const Hash256& coin_hash, const PaymentTranscript& transcript,
      bool faulty) const;

  /// The stripe-locked state machine shared by sign_transcript and the
  /// batch path: re-checks the spend state under the coin's stripe, then
  /// extracts, refuses, or countersigns.  Caller has already verified the
  /// coin and its NIZK.
  Outcome<SignResult> finish_sign(const PaymentTranscript& transcript,
                                  const Hash256& coin_hash, Timestamp now,
                                  bool faulty);

  bool is_faulty() const {
    sync::MutexLock lock(mu_);
    return faulty_;
  }

  // ---- store journaling (see attach_store) ----
  //
  // Encoders are static over the record values (no stripe annotation
  // needed); callers journal while holding the coin's stripe, which is
  // legal because kStore sits below kShard.  One wire::Writer per entry
  // point → one log record → torn tails never persist half a transition.
  /// Appends `w` as one delta record; no-op when no store is attached.
  void journal(const wire::Writer& w);
  static void delta_commitment(wire::Writer& w, const Hash256& hash,
                               const CommitmentRecord& record);
  static void delta_spent(wire::Writer& w, const Hash256& hash,
                          const SpentRecord& record);
  static void delta_double_spent(wire::Writer& w, const Hash256& hash,
                                 const DoubleSpentRecord& record);
  static void delta_chain(wire::Writer& w, const Hash256& hash,
                          const std::vector<TransferLink>& chain);
  static void delta_spent_erase(wire::Writer& w, const Hash256& hash);
  static void delta_counters(wire::Writer& w, std::uint64_t coins_signed);
  /// Re-applies one journaled delta record (recovery replay); takes the
  /// touched coin's stripe (or mu_) per sub-record.
  void apply_delta(std::span<const std::uint8_t> delta);

  group::SchnorrGroup grp_;    // immutable shared parameters: no guard
  sig::PublicKey broker_key_;  // fixed at construction
  MerchantId id_;              // fixed at construction
  sig::KeyPair key_;           // fixed at construction
  bn::Rng& rng_;               // external; only drawn from under rng_mu_
  /// Set by attach_store while quiescent, then only read — unguarded reads
  /// never race (same contract as Broker::store_).
  store::Store* store_ = nullptr;
  /// Guards the scalar config/accounting fields.  Never acquired while a
  /// stripe is held (kService > kShard: service lock first or not at all).
  mutable sync::Mutex mu_{"ecash.witness", sync::level::kService};
  /// Guards draws from the shared rng_; taken inside a stripe when a
  /// countersignature needs a nonce (kShardRng < kShard).
  mutable sync::Mutex rng_mu_{"ecash.witness_rng", sync::level::kShardRng};
  Timestamp commitment_ttl_ P2P_GUARDED_BY(mu_) = 30'000;
  bool faulty_ P2P_GUARDED_BY(mu_) = false;
  std::uint64_t coins_signed_ P2P_GUARDED_BY(mu_) = 0;

  std::array<Stripe, kStripeCount> stripes_;
  std::vector<DoubleSpendProof> stale_owner_evidence_ P2P_GUARDED_BY(mu_);
};

}  // namespace p2pcash::ecash
