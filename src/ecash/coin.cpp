#include "ecash/coin.h"

#include "crypto/sha256.h"
#include "metrics/counters.h"
#include "nizk/representation.h"

namespace p2pcash::ecash {

using bn::BigInt;

void CoinInfo::encode(wire::Writer& w) const {
  w.put_u32(denomination);
  w.put_u32(list_version);
  w.put_i64(soft_expiry);
  w.put_i64(hard_expiry);
  w.put_u8(witness_n);
  w.put_u8(witness_k);
  w.put_bytes(escrow_tag);
}

CoinInfo CoinInfo::decode(wire::Reader& r) {
  CoinInfo info;
  info.denomination = r.get_u32();
  info.list_version = r.get_u32();
  info.soft_expiry = r.get_i64();
  info.hard_expiry = r.get_i64();
  info.witness_n = r.get_u8();
  info.witness_k = r.get_u8();
  info.escrow_tag = r.get_bytes();
  return info;
}

void BareCoin::encode(wire::Writer& w) const {
  w.put_bigint(sig.rho);
  w.put_bigint(sig.omega);
  w.put_bigint(sig.sigma);
  w.put_bigint(sig.delta);
  info.encode(w);
  w.put_bigint(a);
  w.put_bigint(b);
}

BareCoin BareCoin::decode(wire::Reader& r) {
  BareCoin coin;
  coin.sig.rho = r.get_bigint();
  coin.sig.omega = r.get_bigint();
  coin.sig.sigma = r.get_bigint();
  coin.sig.delta = r.get_bigint();
  coin.info = CoinInfo::decode(r);
  coin.a = r.get_bigint();
  coin.b = r.get_bigint();
  return coin;
}

std::vector<std::uint8_t> BareCoin::blind_message() const {
  wire::Writer w;
  w.put_string("p2pcash/coin-commitments/v1");
  w.put_bigint(a);
  w.put_bigint(b);
  return w.take();
}

std::array<std::uint8_t, 32> BareCoin::coin_hash() const {
  metrics::count_hash();
  crypto::Sha256 h;
  h.update(std::string_view("p2pcash/coin-hash/v1"));
  h.update(bytes());
  return h.finalize();
}

BigInt witness_point(const std::array<std::uint8_t, 32>& coin_hash,
                     std::uint8_t index) {
  // Slot 0 is h(bare coin) truncated to the range space — no extra hash.
  if (index == 0) {
    return BigInt::from_bytes_be(
        std::span<const std::uint8_t>(coin_hash.data(), kRangeBits / 8));
  }
  metrics::count_hash();
  crypto::Sha256 h;
  h.update(std::string_view("p2pcash/witness-point/v1"));
  h.update(coin_hash);
  h.update(std::span<const std::uint8_t>(&index, 1));
  auto digest = h.finalize();
  return BigInt::from_bytes_be(
      std::span<const std::uint8_t>(digest.data(), kRangeBits / 8));
}

BigInt BareCoin::witness_point(std::uint8_t index) const {
  return ecash::witness_point(coin_hash(), index);
}

bool check_witness_probe_sequence(
    const Coin& coin, const std::array<std::uint8_t, 32>& coin_hash) {
  std::size_t next = 0;  // next claimed entry to verify
  for (std::uint8_t idx = 0;
       idx < kMaxWitnessProbes && next < coin.witnesses.size(); ++idx) {
    BigInt point = witness_point(coin_hash, idx);
    bool in_prior = false;
    for (std::size_t j = 0; j < next; ++j) {
      if (coin.witnesses[j].contains(point)) {
        in_prior = true;  // collision with an assigned witness: skip probe
        break;
      }
    }
    if (in_prior) continue;
    if (!coin.witnesses[next].contains(point)) return false;
    ++next;
  }
  return next == coin.witnesses.size();
}

std::vector<std::uint8_t> TransferLink::signed_payload(
    const std::array<std::uint8_t, 32>& coin_hash,
    std::uint32_t position) const {
  wire::Writer w;
  w.put_string("p2pcash/transfer-link/v1");
  w.put_bytes(coin_hash);
  w.put_u32(position);
  w.put_bigint(new_a);
  w.put_bigint(new_b);
  w.put_bigint(r1);
  w.put_bigint(r2);
  w.put_i64(datetime);
  w.put_string(witness);
  return w.take();
}

void TransferLink::encode(wire::Writer& w) const {
  w.put_bigint(new_a);
  w.put_bigint(new_b);
  w.put_bigint(r1);
  w.put_bigint(r2);
  w.put_i64(datetime);
  w.put_string(witness);
  w.put_bigint(sig_e);
  w.put_bigint(sig_s);
}

TransferLink TransferLink::decode(wire::Reader& r) {
  TransferLink link;
  link.new_a = r.get_bigint();
  link.new_b = r.get_bigint();
  link.r1 = r.get_bigint();
  link.r2 = r.get_bigint();
  link.datetime = r.get_i64();
  link.witness = r.get_string();
  link.sig_e = r.get_bigint();
  link.sig_s = r.get_bigint();
  return link;
}

void Coin::encode(wire::Writer& w) const {
  bare.encode(w);
  w.put_u8(static_cast<std::uint8_t>(witnesses.size()));
  for (const auto& entry : witnesses) entry.encode(w);
  w.put_u32(static_cast<std::uint32_t>(transfers.size()));
  for (const auto& link : transfers) link.encode(w);
}

Coin Coin::decode(wire::Reader& r) {
  Coin coin;
  coin.bare = BareCoin::decode(r);
  std::uint8_t n = r.get_u8();
  coin.witnesses.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    coin.witnesses.push_back(SignedWitnessEntry::decode(r));
  std::uint32_t links = r.get_u32();
  if (links > 4096)  // sanity bound: also prevents huge-reserve DoS
    throw wire::DecodeError("Coin: transfer chain too long");
  coin.transfers.reserve(links);
  for (std::uint32_t i = 0; i < links; ++i)
    coin.transfers.push_back(TransferLink::decode(r));
  return coin;
}

CurrentCommitments current_commitments(const Coin& coin) {
  if (coin.transfers.empty()) return {coin.bare.a, coin.bare.b};
  return {coin.transfers.back().new_a, coin.transfers.back().new_b};
}

BigInt transfer_challenge(const group::SchnorrGroup& grp,
                          const Coin& coin_before_link, const BigInt& new_a,
                          const BigInt& new_b, Timestamp datetime) {
  wire::Writer w;
  w.put_string("p2pcash/transfer-challenge/v1");
  coin_before_link.encode(w);
  w.put_bigint(new_a);
  w.put_bigint(new_b);
  w.put_i64(datetime);
  return grp.hash_to_zq(w.take());
}

Outcome<std::monostate> verify_transfer_chain(const group::SchnorrGroup& grp,
                                              const Coin& coin) {
  if (coin.transfers.empty()) return std::monostate{};
  if (coin.witnesses.empty())
    return Refusal{RefusalReason::kInvalidCoin, "no witness entries"};
  const SignedWitnessEntry& endorser = coin.witnesses[0];
  const auto coin_hash = coin.bare.coin_hash();
  Coin prefix;  // the coin as it looked before each link
  prefix.bare = coin.bare;
  prefix.witnesses = coin.witnesses;
  for (std::size_t i = 0; i < coin.transfers.size(); ++i) {
    const TransferLink& link = coin.transfers[i];
    if (link.witness != endorser.merchant)
      return Refusal{RefusalReason::kWrongWitness,
                     "transfer link endorsed by a non-witness"};
    auto commitments = current_commitments(prefix);
    BigInt d = transfer_challenge(grp, prefix, link.new_a, link.new_b,
                                  link.datetime);
    nizk::Commitments comm{commitments.a, commitments.b};
    if (!nizk::verify_response(grp, comm, d,
                               nizk::Response{link.r1, link.r2}))
      return Refusal{RefusalReason::kBadProof,
                     "transfer link ownership proof invalid"};
    if (!sig::verify(grp, endorser.witness_key,
                     link.signed_payload(coin_hash,
                                         static_cast<std::uint32_t>(i)),
                     sig::Signature{link.sig_e, link.sig_s}))
      return Refusal{RefusalReason::kBadSignature,
                     "transfer link witness signature invalid"};
    prefix.transfers.push_back(link);
  }
  return std::monostate{};
}

Outcome<std::monostate> verify_coin(const group::SchnorrGroup& grp,
                                    const sig::PublicKey& broker_key,
                                    const Coin& coin, Timestamp now) {
  const CoinInfo& info = coin.bare.info;
  if (now >= info.soft_expiry)
    return Refusal{RefusalReason::kExpired, "coin past soft expiry"};
  if (info.witness_n == 0 || info.witness_k == 0 ||
      info.witness_k > info.witness_n)
    return Refusal{RefusalReason::kInvalidCoin, "bad witness policy"};
  if (!blindsig::verify(grp, broker_key.y, info.bytes(),
                        coin.bare.blind_message(), coin.bare.sig))
    return Refusal{RefusalReason::kInvalidCoin,
                   "broker blind signature invalid"};
  if (coin.witnesses.size() != info.witness_n)
    return Refusal{RefusalReason::kInvalidCoin, "witness entry count"};
  const auto coin_hash = coin.bare.coin_hash();
  for (const SignedWitnessEntry& entry : coin.witnesses) {
    if (entry.version != info.list_version)
      return Refusal{RefusalReason::kInvalidCoin,
                     "witness entry version mismatch"};
    if (!sig::verify(grp, broker_key, entry.signed_payload(),
                     entry.broker_sig))
      return Refusal{RefusalReason::kBadSignature,
                     "witness entry signature invalid"};
  }
  if (!check_witness_probe_sequence(coin, coin_hash))
    return Refusal{RefusalReason::kWrongWitness,
                   "witness assignment does not match h(bare coin)"};
  if (auto chain = verify_transfer_chain(grp, coin); !chain)
    return chain.refusal();
  return std::monostate{};
}

Outcome<std::monostate> verify_bare_coin_with_secret(
    const group::SchnorrGroup& grp, const bn::BigInt& broker_secret,
    const BareCoin& bare) {
  if (!blindsig::verify_with_secret(grp, broker_secret, bare.info.bytes(),
                                    bare.blind_message(), bare.sig))
    return Refusal{RefusalReason::kInvalidCoin,
                   "broker blind signature invalid"};
  return std::monostate{};
}

}  // namespace p2pcash::ecash
