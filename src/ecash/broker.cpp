#include "ecash/broker.h"

#include "escrow/elgamal.h"

#include <algorithm>
#include <stdexcept>

namespace p2pcash::ecash {

using bn::BigInt;

namespace {
// Sub-delta tags inside one journaled record (see broker.h: one record
// per mutating entry point, applied atomically on replay).
constexpr std::uint8_t kDeltaAccount = 1;
constexpr std::uint8_t kDeltaTable = 2;
constexpr std::uint8_t kDeltaCounters = 3;
constexpr std::uint8_t kDeltaDeposit = 4;
constexpr std::uint8_t kDeltaRenewal = 5;
constexpr std::uint8_t kDeltaWitnessFault = 6;
constexpr std::uint8_t kDeltaFraudProof = 7;
}  // namespace

namespace {
// The broker has a single key pair (x, y = g^x) like the paper's B: it
// blind-signs coins and plain-signs witness-range entries with the same
// key (the two uses are domain-separated by their hash tags).
bn::BigInt broker_secret(const group::SchnorrGroup& grp, bn::Rng& rng) {
  return grp.random_scalar(rng);
}
}  // namespace

Broker::Broker(group::SchnorrGroup grp, bn::Rng& rng, Config config)
    : grp_(grp),
      rng_(rng),
      config_(config),
      signer_(grp, broker_secret(grp, rng)),
      identity_(sig::KeyPair::from_secret(grp, signer_.secret_x())) {}

void Broker::register_merchant(const MerchantId& id, const sig::PublicKey& key,
                               Cents security_deposit) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  auto& account = accounts_[id];
  account.key = key;
  account.deposit_remaining = security_deposit;
  wire::Writer w;
  delta_account(w, id);
  journal(w);
}

bool Broker::is_registered(const MerchantId& id) const {
  sync::MutexLock lock(mu_);
  return accounts_.contains(id);
}

const Broker::MerchantAccount* Broker::account(const MerchantId& id) const {
  sync::MutexLock lock(mu_);
  auto it = accounts_.find(id);
  return it == accounts_.end() ? nullptr : &it->second;
}

void Broker::set_weight(const MerchantId& id, std::uint64_t weight) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  auto it = accounts_.find(id);
  if (it == accounts_.end())
    throw std::invalid_argument("Broker::set_weight: unknown merchant");
  if (weight == 0)
    throw std::invalid_argument("Broker::set_weight: zero weight");
  it->second.weight = weight;
  wire::Writer w;
  delta_account(w, id);
  journal(w);
}

const WitnessTable& Broker::publish_witness_table(Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  std::vector<WitnessTable::Participant> participants;
  for (const auto& [id, account] : accounts_) {
    if (account.flagged) continue;  // caught cheating: out of the rotation
    participants.push_back({id, account.key, account.weight});
  }
  if (participants.empty())
    throw std::logic_error("Broker: no eligible witnesses to publish");
  auto version = static_cast<std::uint32_t>(tables_.size() + 1);
  tables_.push_back(
      WitnessTable::build(version, now, participants, identity_, rng_));
  wire::Writer w;
  delta_table(w, tables_.back());
  journal(w);
  return tables_.back();
}

const WitnessTable& Broker::current_table() const {
  sync::MutexLock lock(mu_);
  if (tables_.empty())
    throw std::logic_error("Broker: no witness table published yet");
  return tables_.back();
}

const WitnessTable* Broker::table(std::uint32_t version) const {
  sync::MutexLock lock(mu_);
  return table_unlocked(version);
}

const WitnessTable* Broker::table_unlocked(std::uint32_t version) const {
  if (version == 0 || version > tables_.size()) return nullptr;
  return &tables_[version - 1];
}

CoinInfo Broker::make_info(Cents denomination, Timestamp now) const {
  CoinInfo info;
  info.denomination = denomination;
  // Callers hold mu_ and have checked tables_ is non-empty.
  info.list_version = tables_.back().version();
  info.soft_expiry = now + config_.soft_lifetime_ms;
  info.hard_expiry = info.soft_expiry + config_.renewal_window_ms;
  info.witness_n = config_.witness_n;
  info.witness_k = config_.witness_k;
  return info;
}

Outcome<Broker::WithdrawalOffer> Broker::start_withdrawal(Cents denomination,
                                                          Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  if (tables_.empty())
    return Refusal{RefusalReason::kInternal, "no witness table published"};
  if (denomination == 0)
    return Refusal{RefusalReason::kInternal, "zero denomination"};
  WithdrawalOffer offer;
  offer.session = next_session_++;
  offer.info = make_info(denomination, now);
  auto session = signer_.start(offer.info.bytes(), rng_);
  offer.first = session.first;
  withdrawal_sessions_.emplace(offer.session, std::move(session));
  fiat_collected_ += denomination;  // client pays out of band (card/deposit)
  wire::Writer w;
  delta_counters(w);
  journal(w);
  return offer;
}

Outcome<Broker::WithdrawalOffer> Broker::start_withdrawal_escrowed(
    Cents denomination, const std::string& client_identity,
    const bn::BigInt& escrow_authority_y, Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  if (tables_.empty())
    return Refusal{RefusalReason::kInternal, "no witness table published"};
  if (denomination == 0)
    return Refusal{RefusalReason::kInternal, "zero denomination"};
  if (client_identity.empty())
    return Refusal{RefusalReason::kInternal, "empty identity to escrow"};
  WithdrawalOffer offer;
  offer.session = next_session_++;
  offer.info = make_info(denomination, now);
  offer.info.escrow_tag = escrow::make_escrow_tag(
      grp_, escrow_authority_y, client_identity, rng_);
  auto session = signer_.start(offer.info.bytes(), rng_);
  offer.first = session.first;
  withdrawal_sessions_.emplace(offer.session, std::move(session));
  fiat_collected_ += denomination;
  wire::Writer w;
  delta_counters(w);
  journal(w);
  return offer;
}

Outcome<blindsig::SignerResponse> Broker::finish_withdrawal(
    std::uint64_t session, const BigInt& e) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  auto it = withdrawal_sessions_.find(session);
  if (it == withdrawal_sessions_.end()) {
    // Idempotent retry: the same challenge on an answered session re-issues
    // the recorded response (the client's copy was lost in transit).  A
    // *different* challenge is a bid for a second signature — refused.
    auto done = completed_withdrawals_.find(session);
    if (done == completed_withdrawals_.end())
      return Refusal{RefusalReason::kStaleRequest,
                     "unknown withdrawal session"};
    if (done->second.e != e)
      return Refusal{RefusalReason::kStaleRequest,
                     "session already answered a different challenge"};
    return done->second.response;
  }
  auto response = signer_.respond(it->second, e);
  withdrawal_sessions_.erase(it);  // one signature per session, ever
  completed_withdrawals_.emplace(session, CompletedWithdrawal{e, response});
  ++coins_issued_;
  wire::Writer w;
  delta_counters(w);
  journal(w);
  return response;
}

Outcome<std::monostate> Broker::check_witness_assignment(
    const Coin& coin, const Hash256& coin_hash) const {
  const WitnessTable* tbl = table_unlocked(coin.bare.info.list_version);
  if (!tbl)
    return Refusal{RefusalReason::kInvalidCoin, "unknown table version"};
  if (coin.witnesses.size() != coin.bare.info.witness_n)
    return Refusal{RefusalReason::kInvalidCoin, "witness entry count"};
  // The broker checks entries against its own records rather than
  // verifying its own signatures (no Ver cost — Table 1 deposit row),
  // following the same distinct-witness probe sequence as everyone else.
  std::size_t next = 0;
  for (std::uint8_t idx = 0;
       idx < kMaxWitnessProbes && next < coin.witnesses.size(); ++idx) {
    auto expected = tbl->lookup(witness_point(coin_hash, idx));
    if (!expected)
      return Refusal{RefusalReason::kInternal, "witness table has a gap"};
    bool collision = false;
    for (std::size_t j = 0; j < next; ++j) {
      if (coin.witnesses[j].merchant == expected->merchant) collision = true;
    }
    if (collision) continue;
    if (coin.witnesses[next] != *expected)
      return Refusal{RefusalReason::kWrongWitness,
                     "witness entry does not match published table"};
    ++next;
  }
  if (next != coin.witnesses.size())
    return Refusal{RefusalReason::kWrongWitness,
                   "witness assignment incomplete"};
  return std::monostate{};
}

Outcome<std::vector<MerchantId>> Broker::validate_signed_transcript(
    const SignedTranscript& st, const Hash256& coin_hash,
    Timestamp now) const {
  const PaymentTranscript& t = st.transcript;
  const CoinInfo& info = t.coin.bare.info;

  // Coin validity and deposit window: payments happen before soft expiry;
  // deposits are accepted until soft expiry + grace (after which renewal
  // opens — the windows are disjoint by construction).
  if (t.datetime >= info.soft_expiry)
    return Refusal{RefusalReason::kExpired, "payment after soft expiry"};
  if (now > info.soft_expiry + config_.deposit_grace_ms)
    return Refusal{RefusalReason::kExpired, "deposit window closed"};

  // Broker's own blind signature (secret-key fast path: 3 Exp + 2 Hash).
  if (auto ok = verify_bare_coin_with_secret(grp_, signer_.secret_x(),
                                             t.coin.bare);
      !ok)
    return ok.refusal();

  // Witness assignment per the broker's own table records.
  if (auto ok = check_witness_assignment(t.coin, coin_hash); !ok)
    return ok.refusal();

  // The payment NIZK (1 Hash + 3 Exp).
  if (!verify_transcript_proof(grp_, t))
    return Refusal{RefusalReason::kBadProof, "NIZK response invalid"};

  // Required witness endorsements: at least witness_k distinct witnesses
  // from the coin's assignment, each signature valid (1 Ver each).
  std::vector<MerchantId> endorsers;
  for (const auto& endorsement : st.endorsements) {
    auto entry_it = std::find_if(
        t.coin.witnesses.begin(), t.coin.witnesses.end(),
        [&](const SignedWitnessEntry& e) {
          return e.merchant == endorsement.witness;
        });
    if (entry_it == t.coin.witnesses.end()) continue;
    if (std::find(endorsers.begin(), endorsers.end(), endorsement.witness) !=
        endorsers.end())
      continue;  // duplicate endorser
    if (!sig::verify(grp_, entry_it->witness_key, t.signed_payload(),
                     endorsement.signature))
      return Refusal{RefusalReason::kBadSignature,
                     "witness endorsement signature invalid"};
    endorsers.push_back(endorsement.witness);
  }
  if (endorsers.size() < info.witness_k)
    return Refusal{RefusalReason::kBadSignature,
                   "insufficient witness endorsements"};
  return endorsers;
}

Outcome<Broker::DepositReceipt> Broker::deposit(const MerchantId& depositor,
                                                const SignedTranscript& st,
                                                Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  const PaymentTranscript& t = st.transcript;
  const CoinInfo& info = t.coin.bare.info;

  // Only registered merchants hold accounts to credit (paper §3: merchants
  // are long-term, legitimate members).
  auto account_it = accounts_.find(depositor);
  if (account_it == accounts_.end())
    return Refusal{RefusalReason::kUnknownMerchant, "depositor not registered"};
  if (t.merchant != depositor)
    return Refusal{RefusalReason::kBadProof,
                   "transcript names a different merchant"};

  // h(bare coin): computed once, keys both the witness check and the
  // deposit database (matching the paper's 4-Hash deposit row).
  const Hash256 coin_hash = t.coin.bare.coin_hash();

  auto endorsers_outcome = validate_signed_transcript(st, coin_hash, now);
  if (!endorsers_outcome) return endorsers_outcome.refusal();
  std::vector<MerchantId> endorsers = std::move(endorsers_outcome).value();

  // A renewed coin can no longer be deposited (disjoint windows make this
  // unreachable for honest parties; see header).
  if (renewals_.contains(coin_hash))
    return Refusal{RefusalReason::kDoubleSpent, "coin was renewed"};

  auto prior = deposits_.find(coin_hash);
  if (prior == deposits_.end()) {
    // Case 2-a: first deposit. Credit and store until hard expiry.
    deposits_.emplace(coin_hash, DepositRecord{st, depositor});
    account_it->second.balance += info.denomination;
    fiat_paid_out_ += info.denomination;
    wire::Writer w;
    delta_deposit(w, coin_hash);
    delta_account(w, depositor);
    delta_counters(w);
    journal(w);
    return DepositReceipt{info.denomination, false};
  }

  if (prior->second.depositor == depositor)
    // Case 2-b(i): same merchant re-deposits — refused, no credit.
    return Refusal{RefusalReason::kAlreadyDeposited,
                   "this merchant already deposited this coin"};

  // Case 2-b(ii): a different merchant deposits the same coin — some
  // witness signed two transcripts.  The merchant is still paid, out of
  // that witness's security deposit; the proof is two witness signatures
  // over different transcripts of one coin.
  std::vector<MerchantId> prior_endorsers;
  for (const auto& e : prior->second.st.endorsements)
    prior_endorsers.push_back(e.witness);
  MerchantId culprit;
  for (const auto& id : endorsers) {
    if (std::find(prior_endorsers.begin(), prior_endorsers.end(), id) !=
        prior_endorsers.end()) {
      culprit = id;
      break;
    }
  }
  if (culprit.empty()) {
    // No common endorser (possible under k-of-n with disjoint sets): charge
    // the first endorser of the second deposit — it still signed a coin
    // that the assignment says it shares responsibility for.
    culprit = endorsers.front();
  }
  witness_faults_.push_back(
      WitnessFaultProof{coin_hash, prior->second.st, st, culprit});
  auto culprit_it = accounts_.find(culprit);
  Cents amount = info.denomination;
  if (culprit_it != accounts_.end()) {
    culprit_it->second.flagged = true;
    Cents charge = std::min<Cents>(amount, culprit_it->second.deposit_remaining);
    culprit_it->second.deposit_remaining -= charge;
  }
  account_it->second.balance += amount;
  fiat_paid_out_ += amount;
  wire::Writer w;
  delta_witness_fault(w, witness_faults_.back());
  if (culprit_it != accounts_.end()) delta_account(w, culprit);
  delta_account(w, depositor);
  delta_counters(w);
  journal(w);
  return DepositReceipt{amount, true};
}

Outcome<std::vector<Broker::WithdrawalOffer>> Broker::exchange(
    const SignedTranscript& st, const std::vector<Cents>& denominations,
    Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  const PaymentTranscript& t = st.transcript;
  const CoinInfo& info = t.coin.bare.info;
  if (t.merchant != kBrokerCounterparty)
    return Refusal{RefusalReason::kBadProof,
                   "exchange transcript must name the broker"};
  if (denominations.empty())
    return Refusal{RefusalReason::kBadProof, "no change requested"};
  Cents total = 0;
  for (Cents d : denominations) {
    if (d == 0)
      return Refusal{RefusalReason::kBadProof, "zero denomination"};
    total += d;
  }
  if (total != info.denomination)
    return Refusal{RefusalReason::kBadProof,
                   "change does not sum to the coin's value"};

  const Hash256 coin_hash = t.coin.bare.coin_hash();
  if (auto endorsers = validate_signed_transcript(st, coin_hash, now);
      !endorsers)
    return endorsers.refusal();

  if (renewals_.contains(coin_hash))
    return Refusal{RefusalReason::kDoubleSpent, "coin was renewed"};
  if (deposits_.contains(coin_hash))
    return Refusal{RefusalReason::kDoubleSpent,
                   "coin was already deposited or exchanged"};

  // Consume the coin: it enters the deposit database under the broker's
  // own name, so any later merchant deposit of the same coin triggers the
  // standard double-deposit handling (the witness double-signed and pays).
  deposits_.emplace(coin_hash, DepositRecord{st, kBrokerCounterparty});

  // Issue the change: one blind-signature session per new coin.  No fiat
  // moves — the consumed coin funds the new ones exactly.
  std::vector<WithdrawalOffer> offers;
  offers.reserve(denominations.size());
  for (Cents d : denominations) {
    WithdrawalOffer offer;
    offer.session = next_session_++;
    offer.info = make_info(d, now);
    auto session = signer_.start(offer.info.bytes(), rng_);
    offer.first = session.first;
    withdrawal_sessions_.emplace(offer.session, std::move(session));
    offers.push_back(std::move(offer));
  }
  wire::Writer w;
  delta_deposit(w, coin_hash);
  delta_counters(w);
  journal(w);
  return offers;
}

BigInt Broker::renewal_challenge(const Coin& coin,
                                 Timestamp datetime) const {
  wire::Writer w;
  w.put_string("p2pcash/renewal-challenge/v1");
  coin.encode(w);
  w.put_i64(datetime);
  return grp_.hash_to_zq(w.take());
}

Outcome<Broker::RenewalOffer> Broker::start_renewal(Cents denomination,
                                                    Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  if (tables_.empty())
    return Refusal{RefusalReason::kInternal, "no witness table published"};
  RenewalOffer offer;
  offer.session = next_session_++;
  offer.info = make_info(denomination, now);
  auto session = signer_.start(offer.info.bytes(), rng_);
  offer.first = session.first;
  renewal_sessions_.emplace(offer.session, std::move(session));
  wire::Writer w;
  delta_counters(w);
  journal(w);
  return offer;
}

Outcome<blindsig::SignerResponse> Broker::finish_renewal(
    std::uint64_t session, const BigInt& e, const Coin& old_coin,
    const nizk::Response& proof, Timestamp datetime, Timestamp now) {
  store::StoreCommit commit(store_);
  sync::MutexLock lock(mu_);
  auto it = renewal_sessions_.find(session);
  if (it == renewal_sessions_.end())
    return Refusal{RefusalReason::kStaleRequest, "unknown renewal session"};
  // The new coin must match the old coin's value (renewal is an exchange,
  // not a purchase).  The session fixed the new coin's info at start time.
  const CoinInfo new_info =
      wire::decode<CoinInfo>(std::span<const std::uint8_t>(it->second.info));
  if (new_info.denomination != old_coin.bare.info.denomination)
    return Refusal{RefusalReason::kBadProof,
                   "renewal denomination mismatch"};

  // Renewal window: after the deposit grace closes, before hard expiry.
  if (now < old_coin.bare.info.soft_expiry + config_.deposit_grace_ms)
    return Refusal{RefusalReason::kStaleRequest,
                   "renewal opens after the deposit window closes"};
  if (now >= old_coin.bare.info.hard_expiry)
    return Refusal{RefusalReason::kExpired, "coin past hard expiry"};

  // Old coin authenticity (secret-key fast path) and, for transferred
  // coins, the witness-endorsed ownership chain.
  if (auto ok = verify_bare_coin_with_secret(grp_, signer_.secret_x(),
                                             old_coin.bare);
      !ok)
    return ok.refusal();
  if (auto chain = verify_transfer_chain(grp_, old_coin); !chain)
    return chain.refusal();

  // Ownership proof: response to d* = H0(old coin, "renewal", datetime),
  // under the coin's *current* commitments.
  BigInt d_star = renewal_challenge(old_coin, datetime);
  const auto current = current_commitments(old_coin);
  nizk::Commitments comm{current.a, current.b};
  if (!nizk::verify_response(grp_, comm, d_star, proof))
    return Refusal{RefusalReason::kBadProof, "renewal ownership proof invalid"};

  const Hash256 coin_hash = old_coin.bare.coin_hash();

  // Already deposited? Extract the representations from the deposit's
  // transcript plus this renewal proof and refuse (Algorithm 4 step 3).
  if (auto dep = deposits_.find(coin_hash); dep != deposits_.end()) {
    const PaymentTranscript& t = dep->second.st.transcript;
    nizk::ChallengeResponse first{
        payment_challenge(grp_, t.coin, t.merchant, t.datetime), t.resp};
    nizk::ChallengeResponse second{d_star, proof};
    if (auto extracted = nizk::extract(grp_, first, second)) {
      DoubleSpendProof ds;
      ds.coin_hash = coin_hash;
      ds.a = current.a;
      ds.b = current.b;
      ds.secrets = *extracted;
      if (ds.verify(grp_)) {
        renewal_fraud_proofs_.push_back(ds);
        wire::Writer w;
        delta_fraud_proof(w, renewal_fraud_proofs_.back());
        journal(w);
      }
    }
    return Refusal{RefusalReason::kDoubleSpent, "coin was already deposited"};
  }
  // Already renewed?
  if (auto ren = renewals_.find(coin_hash); ren != renewals_.end()) {
    nizk::ChallengeResponse first{
        renewal_challenge(ren->second.coin, ren->second.datetime),
        ren->second.proof};
    nizk::ChallengeResponse second{d_star, proof};
    if (auto extracted = nizk::extract(grp_, first, second)) {
      DoubleSpendProof ds;
      ds.coin_hash = coin_hash;
      ds.a = current.a;
      ds.b = current.b;
      ds.secrets = *extracted;
      if (ds.verify(grp_)) {
        renewal_fraud_proofs_.push_back(ds);
        wire::Writer w;
        delta_fraud_proof(w, renewal_fraud_proofs_.back());
        journal(w);
      }
    }
    return Refusal{RefusalReason::kDoubleSpent, "coin was already renewed"};
  }

  // Mark renewed (stored until the old coin's hard expiry) and answer the
  // blind challenge for the new coin.
  renewals_.emplace(coin_hash, RenewalRecord{old_coin, proof, datetime});
  auto response = signer_.respond(it->second, e);
  renewal_sessions_.erase(it);
  ++coins_issued_;
  wire::Writer w;
  delta_renewal(w, coin_hash);
  delta_counters(w);
  journal(w);
  return response;
}


std::vector<std::uint8_t> Broker::snapshot_state() const {
  sync::MutexLock lock(mu_);
  return snapshot_locked();
}

std::vector<std::uint8_t> Broker::snapshot_locked() const {
  wire::Writer w;
  w.put_string("p2pcash/broker-snapshot/v1");
  w.put_bigint(signer_.secret_x());
  w.put_u64(next_session_);
  w.put_u64(coins_issued_);
  w.put_i64(fiat_collected_);
  w.put_i64(fiat_paid_out_);
  w.put_u32(static_cast<std::uint32_t>(accounts_.size()));
  for (const auto& [id, account] : accounts_) {
    w.put_string(id);
    w.put_bigint(account.key.y);
    w.put_u32(account.deposit_remaining);
    w.put_i64(account.balance);
    w.put_u64(account.weight);
    w.put_u8(account.flagged ? 1 : 0);
  }
  w.put_u32(static_cast<std::uint32_t>(tables_.size()));
  for (const auto& table : tables_) table.encode(w);
  w.put_u32(static_cast<std::uint32_t>(deposits_.size()));
  for (const auto& [hash, record] : deposits_) {
    w.put_bytes(hash);
    record.st.encode(w);
    w.put_string(record.depositor);
  }
  w.put_u32(static_cast<std::uint32_t>(renewals_.size()));
  for (const auto& [hash, record] : renewals_) {
    w.put_bytes(hash);
    record.coin.encode(w);
    w.put_bigint(record.proof.r1);
    w.put_bigint(record.proof.r2);
    w.put_i64(record.datetime);
  }
  w.put_u32(static_cast<std::uint32_t>(witness_faults_.size()));
  for (const auto& fault : witness_faults_) {
    w.put_bytes(fault.coin_hash);
    fault.first.encode(w);
    fault.second.encode(w);
    w.put_string(fault.witness);
  }
  w.put_u32(static_cast<std::uint32_t>(renewal_fraud_proofs_.size()));
  for (const auto& proof : renewal_fraud_proofs_) proof.encode(w);
  return w.take();
}

namespace {
Hash256 snapshot_hash(wire::Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32)
    throw wire::DecodeError("broker snapshot: bad hash width");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}
}  // namespace

void Broker::restore_state(std::span<const std::uint8_t> snapshot) {
  sync::MutexLock lock(mu_);
  restore_locked(snapshot);
  // An externally supplied snapshot supersedes the journal: compact so the
  // store and the in-memory state agree again.
  if (store_ != nullptr) store_->checkpoint(snapshot_locked());
}

void Broker::restore_locked(std::span<const std::uint8_t> snapshot) {
  wire::Reader r(snapshot);
  if (r.get_string() != "p2pcash/broker-snapshot/v1")
    throw wire::DecodeError("broker snapshot: bad magic");
  BigInt secret = r.get_bigint();
  std::uint64_t next_session = r.get_u64();
  std::uint64_t coins_issued = r.get_u64();
  std::int64_t fiat_collected = r.get_i64();
  std::int64_t fiat_paid_out = r.get_i64();
  std::map<MerchantId, MerchantAccount> accounts;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    MerchantId id = r.get_string();
    MerchantAccount account;
    account.key.y = r.get_bigint();
    account.deposit_remaining = r.get_u32();
    account.balance = r.get_i64();
    account.weight = r.get_u64();
    account.flagged = r.get_u8() != 0;
    accounts.emplace(std::move(id), std::move(account));
  }
  std::deque<WitnessTable> tables;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i)
    tables.push_back(WitnessTable::decode(r));
  std::map<Hash256, DepositRecord> deposits;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = snapshot_hash(r);
    DepositRecord record;
    record.st = SignedTranscript::decode(r);
    record.depositor = r.get_string();
    deposits.emplace(hash, std::move(record));
  }
  std::map<Hash256, RenewalRecord> renewals;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = snapshot_hash(r);
    RenewalRecord record;
    record.coin = Coin::decode(r);
    record.proof.r1 = r.get_bigint();
    record.proof.r2 = r.get_bigint();
    record.datetime = r.get_i64();
    renewals.emplace(hash, std::move(record));
  }
  std::vector<WitnessFaultProof> faults;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    WitnessFaultProof fault;
    fault.coin_hash = snapshot_hash(r);
    fault.first = SignedTranscript::decode(r);
    fault.second = SignedTranscript::decode(r);
    fault.witness = r.get_string();
    faults.push_back(std::move(fault));
  }
  std::vector<DoubleSpendProof> fraud;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i)
    fraud.push_back(DoubleSpendProof::decode(r));
  r.expect_end();

  // Parsed completely: commit (keys first, then ledgers).
  signer_ = blindsig::BlindSigner(grp_, secret);
  identity_ = sig::KeyPair::from_secret(grp_, secret);
  next_session_ = next_session;
  coins_issued_ = coins_issued;
  fiat_collected_ = fiat_collected;
  fiat_paid_out_ = fiat_paid_out;
  accounts_ = std::move(accounts);
  tables_ = std::move(tables);
  deposits_ = std::move(deposits);
  renewals_ = std::move(renewals);
  witness_faults_ = std::move(faults);
  renewal_fraud_proofs_ = std::move(fraud);
  withdrawal_sessions_.clear();
  completed_withdrawals_.clear();
  renewal_sessions_.clear();
}

// ---- store journaling ------------------------------------------------------

void Broker::journal(const wire::Writer& w) {
  if (store_ != nullptr && w.size() > 0) store_->append(w.bytes());
}

void Broker::delta_account(wire::Writer& w, const MerchantId& id) const {
  const MerchantAccount& a = accounts_.at(id);
  w.put_u8(kDeltaAccount);
  w.put_string(id);
  w.put_bigint(a.key.y);
  w.put_u32(a.deposit_remaining);
  w.put_i64(a.balance);
  w.put_u64(a.weight);
  w.put_u8(a.flagged ? 1 : 0);
}

void Broker::delta_counters(wire::Writer& w) const {
  w.put_u8(kDeltaCounters);
  w.put_u64(next_session_);
  w.put_u64(coins_issued_);
  w.put_i64(fiat_collected_);
  w.put_i64(fiat_paid_out_);
}

void Broker::delta_deposit(wire::Writer& w, const Hash256& hash) const {
  const DepositRecord& record = deposits_.at(hash);
  w.put_u8(kDeltaDeposit);
  w.put_bytes(hash);
  record.st.encode(w);
  w.put_string(record.depositor);
}

void Broker::delta_renewal(wire::Writer& w, const Hash256& hash) const {
  const RenewalRecord& record = renewals_.at(hash);
  w.put_u8(kDeltaRenewal);
  w.put_bytes(hash);
  record.coin.encode(w);
  w.put_bigint(record.proof.r1);
  w.put_bigint(record.proof.r2);
  w.put_i64(record.datetime);
}

void Broker::delta_table(wire::Writer& w, const WitnessTable& table) {
  w.put_u8(kDeltaTable);
  table.encode(w);
}

void Broker::delta_witness_fault(wire::Writer& w,
                                 const WitnessFaultProof& fault) {
  w.put_u8(kDeltaWitnessFault);
  w.put_bytes(fault.coin_hash);
  fault.first.encode(w);
  fault.second.encode(w);
  w.put_string(fault.witness);
}

void Broker::delta_fraud_proof(wire::Writer& w,
                               const DoubleSpendProof& proof) {
  w.put_u8(kDeltaFraudProof);
  proof.encode(w);
}

void Broker::apply_delta(std::span<const std::uint8_t> delta) {
  wire::Reader r(delta);
  while (!r.at_end()) {
    switch (r.get_u8()) {
      case kDeltaAccount: {
        MerchantId id = r.get_string();
        MerchantAccount a;
        a.key.y = r.get_bigint();
        a.deposit_remaining = r.get_u32();
        a.balance = r.get_i64();
        a.weight = r.get_u64();
        a.flagged = r.get_u8() != 0;
        accounts_[id] = std::move(a);
        break;
      }
      case kDeltaTable: {
        WitnessTable table = WitnessTable::decode(r);
        // Tables are append-only in version order; a replayed record for a
        // version we already hold (checkpoint raced ahead) is last-wins.
        if (table.version() == tables_.size() + 1)
          tables_.push_back(std::move(table));
        else if (table.version() >= 1 && table.version() <= tables_.size())
          tables_[table.version() - 1] = std::move(table);
        else
          throw wire::DecodeError("broker delta: table version gap");
        break;
      }
      case kDeltaCounters: {
        next_session_ = r.get_u64();
        coins_issued_ = r.get_u64();
        fiat_collected_ = r.get_i64();
        fiat_paid_out_ = r.get_i64();
        break;
      }
      case kDeltaDeposit: {
        Hash256 hash = snapshot_hash(r);
        DepositRecord record;
        record.st = SignedTranscript::decode(r);
        record.depositor = r.get_string();
        deposits_[hash] = std::move(record);
        break;
      }
      case kDeltaRenewal: {
        Hash256 hash = snapshot_hash(r);
        RenewalRecord record;
        record.coin = Coin::decode(r);
        record.proof.r1 = r.get_bigint();
        record.proof.r2 = r.get_bigint();
        record.datetime = r.get_i64();
        renewals_[hash] = std::move(record);
        break;
      }
      case kDeltaWitnessFault: {
        WitnessFaultProof fault;
        fault.coin_hash = snapshot_hash(r);
        fault.first = SignedTranscript::decode(r);
        fault.second = SignedTranscript::decode(r);
        fault.witness = r.get_string();
        witness_faults_.push_back(std::move(fault));
        break;
      }
      case kDeltaFraudProof: {
        renewal_fraud_proofs_.push_back(DoubleSpendProof::decode(r));
        break;
      }
      default:
        throw wire::DecodeError("broker delta: unknown tag");
    }
  }
}

void Broker::attach_store(store::Store& store) {
  sync::MutexLock lock(mu_);
  // Re-attach after a crash/restart: the previous store may already be
  // destroyed, so drop the pointer before restore_locked can checkpoint
  // through it.
  store_ = nullptr;
  if (store.empty()) {
    // Fresh store: write a genesis checkpoint so the signing key itself is
    // durable before the first operation is acknowledged.
    store_ = &store;
    store.checkpoint(snapshot_locked());
    return;
  }
  store::Recovered rec = store.recover();
  restore_locked(rec.snapshot);
  for (const auto& delta : rec.deltas) apply_delta(delta);
  // Set last: restore/replay above must not journal into the store they
  // are reading from.
  store_ = &store;
}

void Broker::checkpoint_store() {
  sync::MutexLock lock(mu_);
  if (store_ != nullptr) store_->checkpoint(snapshot_locked());
}

std::vector<std::uint8_t> Broker::export_table_file(
    std::uint32_t version) const {
  sync::MutexLock lock(mu_);
  const WitnessTable* tbl = table_unlocked(version);
  if (tbl == nullptr)
    throw std::invalid_argument("Broker::export_table_file: unknown version");
  return tbl->to_table_file();
}

}  // namespace p2pcash::ecash
