// wallet.h — the client role: withdraw, pay, renew.
//
// The wallet is fully anonymous: it registers nowhere, leaves no security
// deposit, and every coin it withdraws is unlinkable to the withdrawal
// session thanks to the partially blind signature.  A coin is a bearer
// instrument — WalletCoin couples the public Coin with the representation
// secrets (x1, x2, y1, y2) that constitute ownership.

#pragma once

#include <optional>
#include <vector>

#include "blindsig/abe_okamoto.h"
#include "ecash/broker.h"
#include "ecash/coin.h"
#include "ecash/transcript.h"
#include "nizk/representation.h"

namespace p2pcash::ecash {

/// A coin plus the secrets that let its owner spend it.  The secrets are
/// zeroized when the WalletCoin is destroyed (see nizk::CoinSecret), so
/// spent or dropped coins leave no recoverable ownership material.
struct WalletCoin {
  Coin coin;
  nizk::CoinSecret secret;
};

class Wallet {
 public:
  /// `rng` must outlive the wallet.
  Wallet(group::SchnorrGroup grp, sig::PublicKey broker_coin_key,
         sig::PublicKey broker_identity_key, bn::Rng& rng);

  /// Deployment::make_wallet returns a subclass through unique_ptr<Wallet>,
  /// so deletion must dispatch virtually.
  virtual ~Wallet() = default;

  // ---- withdrawal (Algorithm 1, client side) ----

  /// In-flight withdrawal: the blinding state plus the coin secrets.
  struct Withdrawal {
    std::uint64_t session = 0;
    CoinInfo info;
    nizk::CoinSecret secret;
    nizk::Commitments comm;  ///< A, B
    blindsig::BlindRequester requester;
    bn::BigInt e;  ///< blinded challenge to send to the broker
  };

  /// Step 2: accepts the broker's offer, commits to fresh coin secrets and
  /// produces the blinded challenge e.
  Withdrawal begin_withdrawal(const Broker::WithdrawalOffer& offer);

  /// Step 4: unblinds the response and attaches the witness entries chosen
  /// by h(bare coin) from `table` (which must be the version in info and is
  /// validated against the broker's identity key — the client's 1 Ver).
  Outcome<WalletCoin> complete_withdrawal(Withdrawal& state,
                                          const blindsig::SignerResponse& resp,
                                          const WitnessTable& table);

  // ---- payment (Algorithm 2, client side) ----

  /// Client step-1 material for one witness.
  struct PaymentIntent {
    Hash256 coin_hash{};
    std::vector<std::uint8_t> salt;  ///< salt_C, fresh per transaction
    Hash256 nonce{};                 ///< h(salt || I_M)
    MerchantId merchant;
  };

  /// Picks salt_C and computes (coin_hash, nonce) to request the witness
  /// commitment. 2 Hash (coin hash + nonce).
  PaymentIntent prepare_payment(const WalletCoin& coin,
                                const MerchantId& merchant);

  /// Step 3: checks the witness commitments (signature — the client's 1
  /// Ver per commitment — binding to our coin/nonce, expiry; at least
  /// witness_k from distinct assigned witnesses) and builds the transcript
  /// with the NIZK response for d = H0(C, I_M, date/time). 1 Hash, 0 Exp.
  Outcome<PaymentTranscript> build_transcript(
      const WalletCoin& coin, const PaymentIntent& intent,
      const std::vector<WitnessCommitment>& commitments, Timestamp now);

  // ---- renewal (Algorithm 4, client side) ----

  struct Renewal {
    std::uint64_t session = 0;
    CoinInfo info;
    nizk::CoinSecret secret;
    nizk::Commitments comm;
    blindsig::BlindRequester requester;
    bn::BigInt e;
    nizk::Response old_proof;
    Timestamp datetime = 0;
  };

  /// Step 2: challenge for the new coin plus ownership proof for the old.
  Renewal begin_renewal(const WalletCoin& old_coin,
                        const Broker::RenewalOffer& offer,
                        const bn::BigInt& renewal_challenge, Timestamp datetime);

  /// Step 4: same unblinding as withdrawal.
  Outcome<WalletCoin> complete_renewal(Renewal& state,
                                       const blindsig::SignerResponse& resp,
                                       const WitnessTable& table);

  // ---- transfer (the PPay-style transferability extension) ----

  /// Recipient step: fresh secrets + commitments to receive a coin under.
  struct ReceiveIntent {
    nizk::CoinSecret secret;
    nizk::Commitments comm;
  };
  ReceiveIntent prepare_receive();

  /// Owner step: the ownership proof for handing `coin` to the recipient's
  /// commitments at `datetime` (the transfer challenge binds both). 1 Hash.
  nizk::Response respond_transfer(const WalletCoin& coin,
                                  const bn::BigInt& new_a,
                                  const bn::BigInt& new_b,
                                  Timestamp datetime) const;

  /// Recipient step: assembles the received coin from the witness-endorsed
  /// link. Verifies the link targets our commitments.
  Outcome<WalletCoin> accept_transfer(const Coin& coin_before,
                                      const TransferLink& link,
                                      const ReceiveIntent& intent) const;

  // ---- coin storage ----

  void add_coin(WalletCoin coin) { coins_.push_back(std::move(coin)); }
  std::vector<WalletCoin>& coins() { return coins_; }
  const std::vector<WalletCoin>& coins() const { return coins_; }
  /// Total face value of stored coins.
  Cents balance() const;
  /// Removes and returns a coin of the given denomination, if any.
  std::optional<WalletCoin> take_coin(Cents denomination);

 private:
  Outcome<WalletCoin> finish(const CoinInfo& info,
                             const nizk::CoinSecret& secret,
                             const nizk::Commitments& comm,
                             blindsig::BlindRequester& requester,
                             const blindsig::SignerResponse& resp,
                             const WitnessTable& table);

  group::SchnorrGroup grp_;
  sig::PublicKey broker_coin_key_;
  sig::PublicKey broker_identity_key_;
  bn::Rng& rng_;
  std::vector<WalletCoin> coins_;
};

}  // namespace p2pcash::ecash
