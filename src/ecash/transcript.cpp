#include "ecash/transcript.h"

#include "crypto/sha256.h"
#include "metrics/counters.h"

namespace p2pcash::ecash {

using bn::BigInt;

BigInt payment_challenge(const group::SchnorrGroup& grp, const Coin& coin,
                         const MerchantId& merchant, Timestamp datetime) {
  wire::Writer w;
  w.put_string("p2pcash/payment-challenge/v1");
  coin.encode(w);
  w.put_string(merchant);
  w.put_i64(datetime);
  return grp.hash_to_zq(w.take());  // counts the Hash
}

Hash256 payment_nonce(const std::vector<std::uint8_t>& salt,
                      const MerchantId& merchant) {
  metrics::count_hash();
  crypto::Sha256 h;
  h.update(std::string_view("p2pcash/payment-nonce/v1"));
  std::uint8_t len = static_cast<std::uint8_t>(salt.size());
  h.update(std::span<const std::uint8_t>(&len, 1));
  h.update(salt);
  h.update(merchant);
  return h.finalize();
}

std::vector<std::uint8_t> PaymentTranscript::signed_payload() const {
  wire::Writer w;
  w.put_string("p2pcash/payment-transcript/v1");
  encode(w);
  return w.take();
}

void PaymentTranscript::encode(wire::Writer& w) const {
  coin.encode(w);
  w.put_bigint(resp.r1);
  w.put_bigint(resp.r2);
  w.put_string(merchant);
  w.put_i64(datetime);
  w.put_bytes(salt);
}

PaymentTranscript PaymentTranscript::decode(wire::Reader& r) {
  PaymentTranscript t;
  t.coin = Coin::decode(r);
  t.resp.r1 = r.get_bigint();
  t.resp.r2 = r.get_bigint();
  t.merchant = r.get_string();
  t.datetime = r.get_i64();
  t.salt = r.get_bytes();
  return t;
}

bool verify_transcript_proof(const group::SchnorrGroup& grp,
                             const PaymentTranscript& transcript) {
  BigInt d = payment_challenge(grp, transcript.coin, transcript.merchant,
                               transcript.datetime);
  // A transferred coin answers to its last link's commitments.
  auto current = current_commitments(transcript.coin);
  nizk::Commitments comm{current.a, current.b};
  return nizk::verify_response(grp, comm, d, transcript.resp);
}

CommittedValue CommittedValue::fresh(bn::Rng& rng) {
  CommittedValue v;
  v.kind = Kind::kFresh;
  v.payload.resize(32);
  rng.fill(v.payload);
  return v;
}

CommittedValue CommittedValue::prior_transcript(const PaymentTranscript& t,
                                                bn::Rng& rng) {
  CommittedValue v;
  v.kind = Kind::kPriorTranscript;
  wire::Writer w;
  // Salted so h(v) does not let the requesting merchant confirm guesses
  // about where the coin was spent ("the proof does not reveal the
  // identity of M where the coin was previously spent").
  std::vector<std::uint8_t> pepper(16);
  rng.fill(pepper);
  w.put_bytes(pepper);
  t.encode(w);
  v.payload = w.take();
  return v;
}

CommittedValue CommittedValue::extracted(const nizk::ExtractedSecrets& s) {
  CommittedValue v;
  v.kind = Kind::kExtracted;
  wire::Writer w;
  w.put_bigint(s.of_a.e1);
  w.put_bigint(s.of_a.e2);
  w.put_bigint(s.of_b.e1);
  w.put_bigint(s.of_b.e2);
  v.payload = w.take();
  return v;
}

Hash256 CommittedValue::hash() const {
  metrics::count_hash();
  crypto::Sha256 h;
  h.update(std::string_view("p2pcash/committed-value/v1"));
  std::uint8_t k = static_cast<std::uint8_t>(kind);
  h.update(std::span<const std::uint8_t>(&k, 1));
  h.update(payload);
  return h.finalize();
}

void CommittedValue::encode(wire::Writer& w) const {
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_bytes(payload);
}

CommittedValue CommittedValue::decode(wire::Reader& r) {
  CommittedValue v;
  std::uint8_t k = r.get_u8();
  if (k > 2) throw wire::DecodeError("CommittedValue: bad kind");
  v.kind = static_cast<Kind>(k);
  v.payload = r.get_bytes();
  return v;
}

std::vector<std::uint8_t> WitnessCommitment::signed_payload() const {
  wire::Writer w;
  w.put_string("p2pcash/witness-commitment/v1");  // the "commit" tag
  w.put_bytes(coin_hash);
  w.put_bytes(nonce);
  w.put_bytes(value_hash);
  w.put_i64(expires);
  w.put_string(witness);
  return w.take();
}

void WitnessCommitment::encode(wire::Writer& w) const {
  w.put_bytes(coin_hash);
  w.put_bytes(nonce);
  w.put_bytes(value_hash);
  w.put_i64(expires);
  w.put_string(witness);
  w.put_bigint(witness_sig.e);
  w.put_bigint(witness_sig.s);
}

namespace {
Hash256 read_hash(wire::Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32) throw wire::DecodeError("expected 32-byte hash");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}
}  // namespace

WitnessCommitment WitnessCommitment::decode(wire::Reader& r) {
  WitnessCommitment c;
  c.coin_hash = read_hash(r);
  c.nonce = read_hash(r);
  c.value_hash = read_hash(r);
  c.expires = r.get_i64();
  c.witness = r.get_string();
  c.witness_sig.e = r.get_bigint();
  c.witness_sig.s = r.get_bigint();
  return c;
}

void WitnessEndorsement::encode(wire::Writer& w) const {
  w.put_string(witness);
  w.put_bigint(signature.e);
  w.put_bigint(signature.s);
}

WitnessEndorsement WitnessEndorsement::decode(wire::Reader& r) {
  WitnessEndorsement e;
  e.witness = r.get_string();
  e.signature.e = r.get_bigint();
  e.signature.s = r.get_bigint();
  return e;
}

void SignedTranscript::encode(wire::Writer& w) const {
  transcript.encode(w);
  w.put_u8(static_cast<std::uint8_t>(endorsements.size()));
  for (const auto& e : endorsements) e.encode(w);
}

SignedTranscript SignedTranscript::decode(wire::Reader& r) {
  SignedTranscript st;
  st.transcript = PaymentTranscript::decode(r);
  std::uint8_t n = r.get_u8();
  st.endorsements.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    st.endorsements.push_back(WitnessEndorsement::decode(r));
  return st;
}

void DoubleSpendProof::encode(wire::Writer& w) const {
  w.put_bytes(coin_hash);
  w.put_bigint(a);
  w.put_bigint(b);
  w.put_bigint(secrets.of_a.e1);
  w.put_bigint(secrets.of_a.e2);
  w.put_bigint(secrets.of_b.e1);
  w.put_bigint(secrets.of_b.e2);
}

DoubleSpendProof DoubleSpendProof::decode(wire::Reader& r) {
  DoubleSpendProof p;
  p.coin_hash = read_hash(r);
  p.a = r.get_bigint();
  p.b = r.get_bigint();
  p.secrets.of_a.e1 = r.get_bigint();
  p.secrets.of_a.e2 = r.get_bigint();
  p.secrets.of_b.e1 = r.get_bigint();
  p.secrets.of_b.e2 = r.get_bigint();
  return p;
}

bool DoubleSpendProof::verify(const group::SchnorrGroup& grp) const {
  return nizk::verify_representation(grp, a, secrets.of_a) &&
         nizk::verify_representation(grp, b, secrets.of_b);
}

}  // namespace p2pcash::ecash
