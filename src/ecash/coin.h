// coin.h — coin structures: public info, the bare coin, the full coin.
//
// Paper §4/§5: the *bare coin* is (rho, omega, sigma, delta, info, A, B) —
// the Abe–Okamoto partially blind signature of the broker over the client's
// representation commitments A, B with public attachment `info`.  The
// *full-fledged coin* additionally carries the broker-signed witness-range
// entries selected by h(bare coin), which non-malleably assign the coin's
// witness merchant(s).

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "blindsig/abe_okamoto.h"
#include "bn/bigint.h"
#include "ecash/common.h"
#include "ecash/witness_table.h"
#include "group/schnorr_group.h"
#include "wire/codec.h"

namespace p2pcash::ecash {

/// The public, unblinded attachment `info` (paper: denomination, witness
/// list version, soft and hard expiration dates, witness policy).
struct CoinInfo {
  Cents denomination = 0;
  std::uint32_t list_version = 0;   ///< witness-table version
  Timestamp soft_expiry = 0;        ///< unspendable after; renewable until…
  Timestamp hard_expiry = 0;        ///< …completely void after
  std::uint8_t witness_n = 1;       ///< witnesses assigned per coin
  std::uint8_t witness_k = 1;       ///< signatures required (k-of-n)
  /// Escrow extension: ElGamal ciphertext of the owner identity under an
  /// escrow authority's key; empty for fully anonymous coins.  Covered by
  /// the blind signature (it is part of `info`), so it cannot be stripped.
  /// See src/escrow/escrow.h for the anonymity trade-off this implies.
  std::vector<std::uint8_t> escrow_tag;

  void encode(wire::Writer& w) const;
  static CoinInfo decode(wire::Reader& r);
  std::vector<std::uint8_t> bytes() const { return wire::encode(*this); }

  friend bool operator==(const CoinInfo&, const CoinInfo&) = default;
};

/// The broker-blind-signed core of a coin.
struct BareCoin {
  blindsig::PartialBlindSignature sig;  // rho, omega, sigma, delta
  CoinInfo info;
  bn::BigInt a;  // A = g1^x1 g2^x2
  bn::BigInt b;  // B = g1^y1 g2^y2

  void encode(wire::Writer& w) const;
  static BareCoin decode(wire::Reader& r);
  std::vector<std::uint8_t> bytes() const { return wire::encode(*this); }

  /// The commitment message the blind signature covers (A, B encoded).
  std::vector<std::uint8_t> blind_message() const;

  /// coin_hash = h(rho, omega, sigma, delta, info, A, B).  This is the
  /// paper's h(bare coin): it both selects the coin's witness(es) (via
  /// witness_point) and keys the witness/broker databases. One Hash.
  std::array<std::uint8_t, 32> coin_hash() const;

  /// Convenience: witness_point(coin_hash(), index). Counts the coin_hash'
  /// Hash (plus one more for index > 0).
  bn::BigInt witness_point(std::uint8_t index) const;

  friend bool operator==(const BareCoin&, const BareCoin&) = default;
};

/// Bare coin + its broker-signed witness assignment = spendable coin.
/// The 160-bit witness-selection value for probe `index`, derived from
/// h(bare coin).  Probe 0 is the truncation of the coin hash itself (the
/// paper's h(bare coin)); higher probes (the k-of-n extension) re-hash
/// with the index, counting one extra Hash each.
bn::BigInt witness_point(const std::array<std::uint8_t, 32>& coin_hash,
                         std::uint8_t index);

/// Maximum probes when assigning witness_n distinct witnesses.
inline constexpr std::uint8_t kMaxWitnessProbes = 64;

/// One hand-off in a transferable coin's ownership chain (the PPay-style
/// transferability extension, paper §2/§8).  The previous owner proves
/// ownership of the commitments current *before* this link by responding
/// to a transfer challenge bound to the recipient's fresh commitments
/// (new_a, new_b); the coin's witness countersigns and thereafter holds
/// the coin to the new commitments.  "Transferred cash grows in size"
/// (Chaum–Pedersen): each hop appends one link.
struct TransferLink {
  bn::BigInt new_a;         ///< recipient's A' = g1^x1' g2^x2'
  bn::BigInt new_b;         ///< recipient's B' = g1^y1' g2^y2'
  bn::BigInt r1, r2;        ///< previous owner's response to the challenge
  Timestamp datetime = 0;
  std::string witness;      ///< endorsing witness I_M
  bn::BigInt sig_e, sig_s;  ///< witness Schnorr signature over the link

  /// Canonical signed payload (everything except the signature), bound to
  /// the coin and chain position by the caller-provided context hash.
  std::vector<std::uint8_t> signed_payload(
      const std::array<std::uint8_t, 32>& coin_hash,
      std::uint32_t position) const;

  void encode(wire::Writer& w) const;
  static TransferLink decode(wire::Reader& r);

  friend bool operator==(const TransferLink&, const TransferLink&) = default;
};

struct Coin {
  BareCoin bare;
  /// Entry i is the signed range containing witness_point(i);
  /// size == bare.info.witness_n.
  std::vector<SignedWitnessEntry> witnesses;
  /// Ownership chain; empty for a never-transferred coin.  Covered by the
  /// payment challenge d = H0(C, ...) since C includes it.
  std::vector<TransferLink> transfers;

  void encode(wire::Writer& w) const;
  static Coin decode(wire::Reader& r);
  std::vector<std::uint8_t> bytes() const { return wire::encode(*this); }

  friend bool operator==(const Coin&, const Coin&) = default;
};

/// The commitments the coin currently answers to: (A, B) from the bare
/// coin, or the last transfer link's (new_a, new_b).
struct CurrentCommitments {
  bn::BigInt a, b;
};
CurrentCommitments current_commitments(const Coin& coin);

/// The challenge the previous owner answers when appending link `position`
/// (over the bare coin, all prior links, and the new commitments). 1 Hash.
bn::BigInt transfer_challenge(const group::SchnorrGroup& grp,
                              const Coin& coin_before_link,
                              const bn::BigInt& new_a, const bn::BigInt& new_b,
                              Timestamp datetime);

/// Verifies every link of the coin's transfer chain: the previous owner's
/// response under the commitments current at that position, and the
/// witness signature (which must come from witness slot 0 — transfers are
/// single-witness in this implementation).  3 Exp + 1 Hash + 1 Ver per link.
Outcome<std::monostate> verify_transfer_chain(const group::SchnorrGroup& grp,
                                              const Coin& coin);

/// Checks that `coin.witnesses` is exactly the canonical assignment derived
/// from h(bare coin): probe indices 0, 1, 2, … yield points; a point that
/// falls inside an already-assigned witness's range is skipped (ranges are
/// per-merchant, so this guarantees witness_n *distinct* witnesses); each
/// remaining point must fall in the next claimed entry's range, in order.
/// Verifiable from the coin alone — no table history needed (withdrawal
/// requirement 3).
bool check_witness_probe_sequence(
    const Coin& coin, const std::array<std::uint8_t, 32>& coin_hash);

/// Full public verification of a coin, as any merchant performs it in the
/// payment protocol (paper Algorithm 2, step 3):
///   * broker's partially blind signature over (info, A, B) verifies;
///   * validity window contains `now` (soft expiry not passed);
///   * every witness entry is broker-signed, matches info.list_version, and
///     its range contains witness_point(i).
/// Cost: 4 Exp + 2 Hash for the blind signature, 1 Hash per witness point,
/// 1 Ver per witness entry.
Outcome<std::monostate> verify_coin(const group::SchnorrGroup& grp,
                                    const sig::PublicKey& broker_key,
                                    const Coin& coin, Timestamp now);

/// Same, but run by the broker itself using its signing secret — the
/// cheaper g^(rho + x*omega) path (3 Exp + 2 Hash) that Table 1's deposit
/// row reflects.  Witness entries are checked against the broker's own
/// table records by the caller, so this validates the bare coin only.
Outcome<std::monostate> verify_bare_coin_with_secret(
    const group::SchnorrGroup& grp, const bn::BigInt& broker_secret,
    const BareCoin& bare);

}  // namespace p2pcash::ecash
