#include "ecash/common.h"

namespace p2pcash::ecash {

const char* to_string(RefusalReason reason) {
  switch (reason) {
    case RefusalReason::kInvalidCoin: return "invalid-coin";
    case RefusalReason::kWrongWitness: return "wrong-witness";
    case RefusalReason::kExpired: return "expired";
    case RefusalReason::kDoubleSpent: return "double-spent";
    case RefusalReason::kAlreadyDeposited: return "already-deposited";
    case RefusalReason::kCommitmentOutstanding: return "commitment-outstanding";
    case RefusalReason::kBadNonce: return "bad-nonce";
    case RefusalReason::kBadProof: return "bad-proof";
    case RefusalReason::kBadSignature: return "bad-signature";
    case RefusalReason::kUnknownMerchant: return "unknown-merchant";
    case RefusalReason::kStaleRequest: return "stale-request";
    case RefusalReason::kDuplicate: return "duplicate";
    case RefusalReason::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace p2pcash::ecash
