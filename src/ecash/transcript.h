// transcript.h — payment transcripts and witness commitments.
//
// Paper Algorithm 2.  A payment transcript binds a coin to one merchant and
// one time through the challenge d = H0(C, I_M, date/time) and the NIZK
// response (r1, r2); it is publicly verifiable yet unusable by anyone else
// (requirement: "anyone that sees the transcript should not be able to
// forge another payment transcript, or cash the coin").  The witness first
// issues a signed *commitment* (step 2) promising to sign the transcript,
// bound to the target merchant through nonce = h(salt_C || I_M) without
// learning the merchant ahead of time.

#pragma once

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "ecash/coin.h"
#include "ecash/common.h"
#include "nizk/representation.h"
#include "sig/schnorr_sig.h"

namespace p2pcash::ecash {

using Hash256 = std::array<std::uint8_t, 32>;

/// d = H0(C, I_M, date/time) — the payment challenge. Counts one Hash.
bn::BigInt payment_challenge(const group::SchnorrGroup& grp, const Coin& coin,
                             const MerchantId& merchant, Timestamp datetime);

/// nonce = h(salt_C || I_M): commits the payment to a merchant without
/// revealing the merchant to the witness. Counts one Hash.
Hash256 payment_nonce(const std::vector<std::uint8_t>& salt,
                      const MerchantId& merchant);

/// The full payment transcript of Algorithm 2 step 3/4.
struct PaymentTranscript {
  Coin coin;
  nizk::Response resp;  // r1 = x1 + d*y1, r2 = x2 + d*y2
  MerchantId merchant;  // I_M
  Timestamp datetime = 0;
  std::vector<std::uint8_t> salt;  // salt_C (nonce preimage part)

  /// Canonical bytes the witness signs.
  std::vector<std::uint8_t> signed_payload() const;

  void encode(wire::Writer& w) const;
  static PaymentTranscript decode(wire::Reader& r);

  friend bool operator==(const PaymentTranscript&,
                         const PaymentTranscript&) = default;
};

/// Verifies the transcript's NIZK: d = H0(C, I_M, date/time) and
/// A * B^d == g1^r1 * g2^r2.  Costs 1 Hash + 3 Exp.  (Coin validity is
/// checked separately by verify_coin.)
bool verify_transcript_proof(const group::SchnorrGroup& grp,
                             const PaymentTranscript& transcript);

/// The value the witness commits to with h(v) in step 2: either fresh
/// randomness (coin unseen) or evidence of a prior spend.
struct CommittedValue {
  enum class Kind : std::uint8_t {
    kFresh = 0,           ///< random value — coin not seen before
    kPriorTranscript = 1, ///< salted prior payment transcript
    kExtracted = 2,       ///< recovered representation(s)
  };
  Kind kind = Kind::kFresh;
  std::vector<std::uint8_t> payload;  // canonical encoding per kind

  static CommittedValue fresh(bn::Rng& rng);
  static CommittedValue prior_transcript(const PaymentTranscript& t,
                                         bn::Rng& rng);
  static CommittedValue extracted(const nizk::ExtractedSecrets& secrets);

  /// h(v). Counts one Hash.
  Hash256 hash() const;

  void encode(wire::Writer& w) const;
  static CommittedValue decode(wire::Reader& r);

  friend bool operator==(const CommittedValue&, const CommittedValue&) = default;
};

/// Step-2 witness commitment: a signed promise to countersign this coin's
/// next valid transcript at the (hidden) merchant behind `nonce`, valid
/// until `expires`.
struct WitnessCommitment {
  Hash256 coin_hash{};
  Hash256 nonce{};
  Hash256 value_hash{};  // h(v)
  Timestamp expires = 0; // t_e
  MerchantId witness;    // issuing witness I_{M_C}
  sig::Signature witness_sig;

  std::vector<std::uint8_t> signed_payload() const;

  void encode(wire::Writer& w) const;
  static WitnessCommitment decode(wire::Reader& r);

  friend bool operator==(const WitnessCommitment&,
                         const WitnessCommitment&) = default;
};

/// A witness's countersignature over a payment transcript.
struct WitnessEndorsement {
  MerchantId witness;
  sig::Signature signature;

  void encode(wire::Writer& w) const;
  static WitnessEndorsement decode(wire::Reader& r);

  friend bool operator==(const WitnessEndorsement&,
                         const WitnessEndorsement&) = default;
};

/// What the merchant deposits: the transcript plus >= witness_k
/// endorsements (paper Algorithm 3 step 1).
struct SignedTranscript {
  PaymentTranscript transcript;
  std::vector<WitnessEndorsement> endorsements;

  void encode(wire::Writer& w) const;
  static SignedTranscript decode(wire::Reader& r);

  friend bool operator==(const SignedTranscript&,
                         const SignedTranscript&) = default;
};

/// Publicly verifiable double-spend evidence: the coin's commitments plus a
/// recovered representation of A (and/or B).
struct DoubleSpendProof {
  Hash256 coin_hash{};
  bn::BigInt a;  // commitment A from the coin
  bn::BigInt b;  // commitment B from the coin
  nizk::ExtractedSecrets secrets;

  void encode(wire::Writer& w) const;
  static DoubleSpendProof decode(wire::Reader& r);

  /// Checks A == g1^x1 g2^x2 and B == g1^y1 g2^y2 (4 Exp). Anyone can run
  /// this; a valid proof is impossible without a double-spend (paper §6).
  bool verify(const group::SchnorrGroup& grp) const;
};

}  // namespace p2pcash::ecash
