#include "ecash/deployment.h"

#include <cstdio>
#include <stdexcept>

namespace p2pcash::ecash {

namespace {
MerchantId merchant_name(std::size_t i) {
  char buf[32];  // large enough for "m" + any 64-bit index
  std::snprintf(buf, sizeof buf, "m%03zu", i);
  return buf;
}
}  // namespace

Deployment::Deployment(const group::SchnorrGroup& grp, std::size_t n_merchants,
                       std::uint64_t seed, Broker::Config config,
                       Cents security_deposit)
    : grp_(grp),
      rng_(seed),
      broker_(grp_, rng_, config),
      arbiter_(grp_) {
  if (n_merchants == 0)
    throw std::invalid_argument("Deployment: need at least one merchant");
  for (std::size_t i = 0; i < n_merchants; ++i) {
    MerchantId id = merchant_name(i);
    auto key = sig::KeyPair::generate(grp_, rng_);
    broker_.register_merchant(id, key.public_key(), security_deposit);
    MerchantNode node;
    node.merchant = std::make_unique<Merchant>(grp_, broker_.coin_key(), id,
                                               key, rng_);
    // Fork a private stream per witness service: services at different nodes
    // sign concurrently, and their per-service rng locks cannot protect a
    // stream shared across nodes.  The fork label is the merchant id, so
    // equal seeds still give bit-identical runs.
    node.witness_rng =
        std::make_unique<crypto::ChaChaRng>(rng_.fork("witness-" + id));
    node.witness = std::make_unique<WitnessService>(
        grp_, broker_.coin_key(), id, key, *node.witness_rng);
    nodes_.emplace(std::move(id), std::move(node));
  }
  broker_.publish_witness_table(/*now=*/0);
}

std::vector<MerchantId> Deployment::merchant_ids() const {
  std::vector<MerchantId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

MerchantNode& Deployment::node(const MerchantId& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::invalid_argument("Deployment::node: unknown merchant " + id);
  return it->second;
}

std::unique_ptr<Wallet> Deployment::make_wallet() {
  // Each wallet gets an independent RNG stream: a wallet's randomness must
  // not be predictable from the deployment's other components.  The
  // counter is per-deployment so equal seeds give bit-identical runs.
  auto child = std::make_unique<crypto::ChaChaRng>(
      rng_.fork("wallet-" + std::to_string(wallet_counter_++)));
  // Keep the RNG alive by storing it inside a Wallet subclass-free wrapper:
  // we tie its lifetime to the wallet via a custom deleter.
  struct OwningWallet : Wallet {
    OwningWallet(const group::SchnorrGroup& grp, sig::PublicKey coin_key,
                 sig::PublicKey id_key, std::unique_ptr<crypto::ChaChaRng> rng)
        : Wallet(grp, std::move(coin_key), std::move(id_key), *rng),
          rng_holder(std::move(rng)) {}
    std::unique_ptr<crypto::ChaChaRng> rng_holder;
  };
  return std::make_unique<OwningWallet>(grp_, broker_.coin_key(),
                                        broker_.identity_key(),
                                        std::move(child));
}

void Deployment::set_offline(const MerchantId& id, bool offline) {
  if (offline)
    offline_.insert(id);
  else
    offline_.erase(id);
}

bool Deployment::is_offline(const MerchantId& id) const {
  return offline_.contains(id);
}

Outcome<WalletCoin> Deployment::withdraw(Wallet& wallet, Cents denomination,
                                         Timestamp now) {
  auto offer = broker_.start_withdrawal(denomination, now);
  if (!offer) return offer.refusal();
  auto state = wallet.begin_withdrawal(offer.value());
  auto response = broker_.finish_withdrawal(state.session, state.e);
  if (!response) return response.refusal();
  return wallet.complete_withdrawal(state, response.value(),
                                    broker_.current_table());
}

Deployment::PaymentResult Deployment::pay(Wallet& wallet,
                                          const WalletCoin& coin,
                                          const MerchantId& merchant_id,
                                          Timestamp now) {
  PaymentResult result;
  if (offline_.contains(merchant_id)) {
    result.refusal = Refusal{RefusalReason::kInternal, "merchant offline"};
    return result;
  }
  Merchant& storefront = *node(merchant_id).merchant;

  // Step 1-2: collect witness commitments (need witness_k of witness_n,
  // from distinct merchants — witness slots may collide on one merchant).
  auto intent = wallet.prepare_payment(coin, merchant_id);
  std::vector<WitnessCommitment> commitments;
  for (const auto& entry : coin.coin.witnesses) {
    if (commitments.size() >= coin.coin.bare.info.witness_k) break;
    if (offline_.contains(entry.merchant)) continue;
    bool already = false;
    for (const auto& c : commitments)
      if (c.witness == entry.merchant) already = true;
    if (already) continue;
    auto outcome = node(entry.merchant)
                       .witness->request_commitment(intent.coin_hash,
                                                    intent.nonce, now);
    if (outcome) commitments.push_back(std::move(outcome).value());
  }
  if (commitments.size() < coin.coin.bare.info.witness_k) {
    result.refusal = Refusal{RefusalReason::kInternal,
                             "not enough reachable witnesses"};
    return result;
  }

  // Step 3: transcript to the merchant.
  auto transcript = wallet.build_transcript(coin, intent, commitments, now);
  if (!transcript) {
    result.refusal = transcript.refusal();
    return result;
  }
  if (auto accepted =
          storefront.receive_payment(transcript.value(), commitments, now);
      !accepted) {
    result.refusal = accepted.refusal();
    return result;
  }

  // Step 4-5: the merchant asks the committing witnesses to countersign.
  const Hash256 coin_hash = intent.coin_hash;
  for (const auto& commitment : commitments) {
    auto sign_result = node(commitment.witness)
                           .witness->sign_transcript(transcript.value(), now);
    if (!sign_result) {
      storefront.abandon(coin_hash);
      result.refusal = sign_result.refusal();
      return result;
    }
    if (auto* proof =
            std::get_if<DoubleSpendProof>(&sign_result.value())) {
      auto judged = storefront.handle_double_spend(coin_hash, *proof);
      if (judged) {
        result.double_spend_proof = judged.value();
      } else {
        result.refusal = judged.refusal();
      }
      return result;
    }
    auto endorsement = std::get<WitnessEndorsement>(sign_result.value());
    auto done = storefront.add_endorsement(coin_hash, endorsement);
    if (!done) {
      storefront.abandon(coin_hash);
      result.refusal = done.refusal();
      return result;
    }
    if (done.value()) {
      result.accepted = true;  // step 6: service delivered
      return result;
    }
  }
  storefront.abandon(coin_hash);
  result.refusal =
      Refusal{RefusalReason::kInternal, "insufficient endorsements"};
  return result;
}

Deployment::DepositSummary Deployment::deposit_all(
    const MerchantId& merchant_id, Timestamp now) {
  DepositSummary summary;
  Merchant& storefront = *node(merchant_id).merchant;
  for (auto& st : storefront.drain_deposit_queue()) {
    auto receipt = broker_.deposit(merchant_id, st, now);
    if (receipt) {
      summary.credited += receipt.value().credited;
      ++summary.accepted;
    } else {
      ++summary.refused;
    }
  }
  return summary;
}

Outcome<std::vector<WalletCoin>> Deployment::exchange(
    Wallet& wallet, const WalletCoin& coin,
    const std::vector<Cents>& denominations, Timestamp now) {
  // Validate the split *before* involving the witness: once the witness
  // has countersigned the broker-bound transcript the coin is spent, and a
  // retry with fresh randomness would look like a double spend.
  Cents total = 0;
  for (Cents d : denominations) {
    if (d == 0) return Refusal{RefusalReason::kBadProof, "zero denomination"};
    total += d;
  }
  if (denominations.empty() || total != coin.coin.bare.info.denomination)
    return Refusal{RefusalReason::kBadProof,
                   "change does not sum to the coin's value"};

  // Pay the coin to the broker: regular step 1-5 flow with the broker as
  // the (hidden-until-step-3) counterparty.
  auto intent = wallet.prepare_payment(coin, kBrokerCounterparty);
  std::vector<WitnessCommitment> commitments;
  for (const auto& entry : coin.coin.witnesses) {
    if (commitments.size() >= coin.coin.bare.info.witness_k) break;
    if (offline_.contains(entry.merchant)) continue;
    bool already = false;
    for (const auto& c : commitments)
      if (c.witness == entry.merchant) already = true;
    if (already) continue;
    auto outcome = node(entry.merchant)
                       .witness->request_commitment(intent.coin_hash,
                                                    intent.nonce, now);
    if (outcome) commitments.push_back(std::move(outcome).value());
  }
  if (commitments.size() < coin.coin.bare.info.witness_k)
    return Refusal{RefusalReason::kInternal, "not enough reachable witnesses"};
  auto transcript = wallet.build_transcript(coin, intent, commitments, now);
  if (!transcript) return transcript.refusal();
  SignedTranscript st;
  st.transcript = transcript.value();
  for (const auto& commitment : commitments) {
    auto sign = node(commitment.witness)
                    .witness->sign_transcript(transcript.value(), now);
    if (!sign) return sign.refusal();
    if (auto* proof = std::get_if<DoubleSpendProof>(&sign.value())) {
      (void)proof;
      return Refusal{RefusalReason::kDoubleSpent,
                     "witness reports the coin as already spent"};
    }
    st.endorsements.push_back(std::get<WitnessEndorsement>(sign.value()));
  }

  auto offers = broker_.exchange(st, denominations, now);
  if (!offers) return offers.refusal();
  std::vector<WalletCoin> change;
  change.reserve(offers.value().size());
  for (auto& offer : offers.value()) {
    auto state = wallet.begin_withdrawal(offer);
    auto response = broker_.finish_withdrawal(state.session, state.e);
    if (!response) return response.refusal();
    auto fresh = wallet.complete_withdrawal(state, response.value(),
                                            broker_.current_table());
    if (!fresh) return fresh.refusal();
    change.push_back(std::move(fresh).value());
  }
  return change;
}

Deployment::TransferResult Deployment::transfer(Wallet& owner,
                                                const WalletCoin& coin,
                                                Wallet& recipient,
                                                Timestamp now) {
  TransferResult result;
  const MerchantId& witness_id = coin.coin.witnesses[0].merchant;
  if (offline_.contains(witness_id)) {
    result.refusal = Refusal{RefusalReason::kInternal, "witness offline"};
    return result;
  }
  auto intent = recipient.prepare_receive();
  auto response =
      owner.respond_transfer(coin, intent.comm.a, intent.comm.b, now);
  auto outcome = node(witness_id)
                     .witness->sign_transfer(coin.coin, intent.comm.a,
                                             intent.comm.b, response, now,
                                             now);
  if (!outcome) {
    result.refusal = outcome.refusal();
    return result;
  }
  if (auto* proof = std::get_if<DoubleSpendProof>(&outcome.value())) {
    result.double_spend_proof = *proof;
    return result;
  }
  auto received = recipient.accept_transfer(
      coin.coin, std::get<TransferLink>(outcome.value()), intent);
  if (!received) {
    result.refusal = received.refusal();
    return result;
  }
  result.received = std::move(received).value();
  return result;
}

Outcome<WalletCoin> Deployment::renew(Wallet& wallet,
                                      const WalletCoin& old_coin,
                                      Timestamp now) {
  auto offer =
      broker_.start_renewal(old_coin.coin.bare.info.denomination, now);
  if (!offer) return offer.refusal();
  bn::BigInt challenge = broker_.renewal_challenge(old_coin.coin, now);
  auto state = wallet.begin_renewal(old_coin, offer.value(), challenge, now);
  auto response =
      broker_.finish_renewal(state.session, state.e, old_coin.coin,
                             state.old_proof, state.datetime, now);
  if (!response) return response.refusal();
  return wallet.complete_renewal(state, response.value(),
                                 broker_.current_table());
}

}  // namespace p2pcash::ecash
