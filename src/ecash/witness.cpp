#include "ecash/witness.h"

#include <algorithm>

namespace p2pcash::ecash {

WitnessService::WitnessService(group::SchnorrGroup grp,
                               sig::PublicKey broker_key, MerchantId id,
                               sig::KeyPair key, bn::Rng& rng)
    : grp_(std::move(grp)),
      broker_key_(std::move(broker_key)),
      id_(std::move(id)),
      key_(std::move(key)),
      rng_(rng) {}

Outcome<WitnessCommitment> WitnessService::request_commitment(
    const Hash256& coin_hash, const Hash256& nonce, Timestamp now) {
  sync::MutexLock lock(mu_);
  auto it = commitments_.find(coin_hash);
  if (it != commitments_.end() && now < it->second.commitment.expires &&
      !it->second.consumed && it->second.commitment.nonce != nonce &&
      !spent_.contains(coin_hash) && !double_spent_.contains(coin_hash)) {
    // A different, still-pending transaction holds a live promise-to-sign
    // on this fresh coin ("must not issue new commitments ... until this
    // commitment expires").  Once the coin has a spend record the promise
    // is no longer dangerous — any further transcript can only yield a
    // double-spend proof — so new commitments are allowed.
    return Refusal{RefusalReason::kCommitmentOutstanding,
                   "live commitment exists until t_e"};
  }
  // Commit to what we currently know about the coin.
  CommittedValue value = [&] {
    if (auto ds = double_spent_.find(coin_hash); ds != double_spent_.end())
      return CommittedValue::extracted(ds->second.proof.secrets);
    if (auto sp = spent_.find(coin_hash); sp != spent_.end())
      return CommittedValue::prior_transcript(sp->second.transcript, rng_);
    return CommittedValue::fresh(rng_);
  }();
  WitnessCommitment commitment;
  commitment.coin_hash = coin_hash;
  commitment.nonce = nonce;
  commitment.value_hash = value.hash();
  commitment.expires = now + commitment_ttl_;
  commitment.witness = id_;
  commitment.witness_sig = key_.sign(commitment.signed_payload(), rng_);
  commitments_[coin_hash] =
      CommitmentRecord{commitment, std::move(value), /*consumed=*/false};
  return commitment;
}

std::optional<std::size_t> WitnessService::own_entry_index(
    const Coin& coin, const Hash256& coin_hash) const {
  if (!check_witness_probe_sequence(coin, coin_hash)) return std::nullopt;
  for (std::size_t i = 0; i < coin.witnesses.size(); ++i) {
    if (coin.witnesses[i].merchant == id_) return i;
  }
  return std::nullopt;
}

Outcome<SignResult> WitnessService::sign_transcript(
    const PaymentTranscript& transcript, Timestamp now) {
  sync::MutexLock lock(mu_);
  const Coin& coin = transcript.coin;
  const Hash256 coin_hash = coin.bare.coin_hash();

  // Fast path: coin already known double-spent — return the stored proof
  // ("the witness will either be spared all significant crypto operations").
  if (auto ds = double_spent_.find(coin_hash); ds != double_spent_.end()) {
    if (!faulty_) return SignResult{ds->second.proof};
  }
  // Idempotent retry of the very same transcript: re-issue the endorsement
  // rather than treating the retransmission as a second spend.
  if (auto sp = spent_.find(coin_hash);
      sp != spent_.end() && sp->second.transcript == transcript) {
    return SignResult{sp->second.endorsement};
  }

  // Full verification of the presented coin (ours? valid? unexpired?).
  auto index = check_presented_coin(coin, coin_hash, now);
  if (!index) return index.refusal();

  // Verify the payment NIZK (1 Hash for d + 3 Exp).
  if (!verify_transcript_proof(grp_, transcript))
    return Refusal{RefusalReason::kBadProof, "NIZK response invalid"};

  // Transfer-chain consistency: the coin must answer to the commitments we
  // currently hold it to.  A previous owner spending a stale copy after
  // transferring the coin away incriminates itself: its payment response
  // and the recorded transfer-link response open the same commitments
  // under different challenges.
  const auto& recorded = recorded_chain(coin_hash);
  if (coin.transfers != recorded) {
    const bool is_prefix =
        coin.transfers.size() < recorded.size() &&
        std::equal(coin.transfers.begin(), coin.transfers.end(),
                   recorded.begin());
    if (is_prefix && !faulty_) {
      const TransferLink& next = recorded[coin.transfers.size()];
      nizk::ChallengeResponse from_transfer{
          transfer_challenge(grp_, coin, next.new_a, next.new_b,
                             next.datetime),
          nizk::Response{next.r1, next.r2}};
      nizk::ChallengeResponse from_payment{
          payment_challenge(grp_, coin, transcript.merchant,
                            transcript.datetime),
          transcript.resp};
      if (auto extracted = nizk::extract(grp_, from_transfer, from_payment)) {
        // The proof opens the *stale* commitments: it incriminates the
        // previous owner but must not invalidate the coin for its current
        // holder — so it is kept as evidence, not as a double-spend record.
        auto commitments = current_commitments(coin);
        DoubleSpendProof proof;
        proof.coin_hash = coin_hash;
        proof.a = commitments.a;
        proof.b = commitments.b;
        proof.secrets = *extracted;
        stale_owner_evidence_.push_back(proof);
        // The stale owner's commitment (if it obtained one) is discharged
        // by this refusal — it must not block the rightful current owner.
        if (auto commit_it = commitments_.find(coin_hash);
            commit_it != commitments_.end() &&
            payment_nonce(transcript.salt, transcript.merchant) ==
                commit_it->second.commitment.nonce) {
          commit_it->second.consumed = true;
        }
        return SignResult{std::move(proof)};
      }
    }
    return Refusal{RefusalReason::kDoubleSpent,
                   "stale or divergent transfer chain"};
  }

  // Enforce the commitment binding: nonce must equal h(salt || I_M)
  // ("refusing transaction if this check fails").
  auto commit_it = commitments_.find(coin_hash);
  if (commit_it == commitments_.end())
    return Refusal{RefusalReason::kStaleRequest,
                   "no commitment requested for this coin"};
  const WitnessCommitment& commitment = commit_it->second.commitment;
  if (now >= commitment.expires)
    return Refusal{RefusalReason::kStaleRequest, "commitment expired"};
  if (payment_nonce(transcript.salt, transcript.merchant) != commitment.nonce)
    return Refusal{RefusalReason::kBadNonce,
                   "nonce does not bind this merchant"};

  // Double-spend check: a prior transcript with a different challenge lets
  // us extract the representations (paper §6 footnote 4).
  if (auto sp = spent_.find(coin_hash);
      sp != spent_.end() && !faulty_) {
    const PaymentTranscript& prior = sp->second.transcript;
    nizk::ChallengeResponse first{
        payment_challenge(grp_, prior.coin, prior.merchant, prior.datetime),
        prior.resp};
    nizk::ChallengeResponse second{
        payment_challenge(grp_, coin, transcript.merchant,
                          transcript.datetime),
        transcript.resp};
    auto extracted = nizk::extract(grp_, first, second);
    if (!extracted) {
      // Identical challenge but different transcript bytes: a malformed
      // replay; refuse without proof.
      return Refusal{RefusalReason::kDoubleSpent,
                     "coin already spent (identical challenge)"};
    }
    auto commitments = current_commitments(coin);
    DoubleSpendProof proof;
    proof.coin_hash = coin_hash;
    proof.a = commitments.a;
    proof.b = commitments.b;
    proof.secrets = *extracted;
    // Keep only the proof; drop the transcripts (privacy: do not reveal
    // where the coin was first spent).
    double_spent_[coin_hash] = DoubleSpentRecord{proof};
    spent_.erase(coin_hash);
    commit_it->second.consumed = true;  // promise discharged by the proof
    return SignResult{std::move(proof)};
  }

  // First (or faulty-witness) spend: countersign the transcript.
  WitnessEndorsement endorsement;
  endorsement.witness = id_;
  endorsement.signature = key_.sign(transcript.signed_payload(), rng_);
  spent_[coin_hash] = SpentRecord{transcript, endorsement};
  // The commitment is fulfilled; keep the record (the arbiter may ask us to
  // reveal v during conflict resolution) but allow fresh commitments.
  commit_it->second.consumed = true;
  ++coins_signed_;
  return SignResult{std::move(endorsement)};
}

Outcome<std::size_t> WitnessService::check_presented_coin(
    const Coin& coin, const Hash256& coin_hash, Timestamp now) const {
  auto index = own_entry_index(coin, coin_hash);
  if (!index)
    return Refusal{RefusalReason::kWrongWitness,
                   "coin is not assigned to this witness"};
  // Verify our broker-signed range entry (1 Ver) and the bare coin's blind
  // signature (4 Exp + 2 Hash); an invalid coin is never countersigned.
  const SignedWitnessEntry& entry = coin.witnesses[*index];
  if (entry.version != coin.bare.info.list_version)
    return Refusal{RefusalReason::kInvalidCoin, "entry/info version mismatch"};
  if (!sig::verify(grp_, broker_key_, entry.signed_payload(),
                   entry.broker_sig))
    return Refusal{RefusalReason::kBadSignature, "bad broker range signature"};
  if (now >= coin.bare.info.soft_expiry)
    return Refusal{RefusalReason::kExpired, "coin past soft expiry"};
  if (!blindsig::verify(grp_, broker_key_.y, coin.bare.info.bytes(),
                        coin.bare.blind_message(), coin.bare.sig))
    return Refusal{RefusalReason::kInvalidCoin, "bad broker blind signature"};
  if (auto chain = verify_transfer_chain(grp_, coin); !chain)
    return chain.refusal();
  return *index;
}

const std::vector<TransferLink>& WitnessService::recorded_chain(
    const Hash256& coin_hash) const {
  static const std::vector<TransferLink> kEmpty;
  auto it = chains_.find(coin_hash);
  return it == chains_.end() ? kEmpty : it->second;
}

Outcome<std::variant<TransferLink, DoubleSpendProof>>
WitnessService::sign_transfer(const Coin& coin, const bn::BigInt& new_a,
                              const bn::BigInt& new_b,
                              const nizk::Response& response,
                              Timestamp datetime, Timestamp now) {
  sync::MutexLock lock(mu_);
  using TransferResult = std::variant<TransferLink, DoubleSpendProof>;
  const Hash256 coin_hash = coin.bare.coin_hash();

  if (auto ds = double_spent_.find(coin_hash);
      ds != double_spent_.end() && !faulty_) {
    return TransferResult{ds->second.proof};
  }

  auto index = check_presented_coin(coin, coin_hash, now);
  if (!index) return index.refusal();
  if (index.value() != 0)
    return Refusal{RefusalReason::kWrongWitness,
                   "transfers are endorsed by witness slot 0 only"};

  // Chain consistency with our records.
  const auto& recorded = recorded_chain(coin_hash);
  if (coin.transfers != recorded) {
    const bool is_prefix =
        coin.transfers.size() < recorded.size() &&
        std::equal(coin.transfers.begin(), coin.transfers.end(),
                   recorded.begin());
    if (!is_prefix)
      return Refusal{RefusalReason::kDoubleSpent,
                     "stale or divergent transfer chain"};
    const TransferLink& next = recorded[coin.transfers.size()];
    // Identical re-request (network retry): re-issue the recorded link.
    if (next.new_a == new_a && next.new_b == new_b &&
        next.datetime == datetime &&
        nizk::Response{next.r1, next.r2} == response) {
      return TransferResult{next};
    }
    if (faulty_) return Refusal{RefusalReason::kInternal, "faulty witness"};
    // Double transfer: the recorded link and this request answer the same
    // commitments under different challenges — extract.
    nizk::ChallengeResponse first{
        transfer_challenge(grp_, coin, next.new_a, next.new_b, next.datetime),
        nizk::Response{next.r1, next.r2}};
    nizk::ChallengeResponse second{
        transfer_challenge(grp_, coin, new_a, new_b, datetime), response};
    if (auto extracted = nizk::extract(grp_, first, second)) {
      auto commitments = current_commitments(coin);
      DoubleSpendProof proof;
      proof.coin_hash = coin_hash;
      proof.a = commitments.a;
      proof.b = commitments.b;
      proof.secrets = *extracted;
      double_spent_[coin_hash] = DoubleSpentRecord{proof};
      return TransferResult{std::move(proof)};
    }
    return Refusal{RefusalReason::kDoubleSpent,
                   "coin already transferred onward"};
  }

  // A spent coin cannot be transferred; the attempt incriminates the owner.
  if (auto sp = spent_.find(coin_hash); sp != spent_.end() && !faulty_) {
    const PaymentTranscript& prior = sp->second.transcript;
    nizk::ChallengeResponse from_payment{
        payment_challenge(grp_, prior.coin, prior.merchant, prior.datetime),
        prior.resp};
    nizk::ChallengeResponse from_transfer{
        transfer_challenge(grp_, coin, new_a, new_b, datetime), response};
    if (auto extracted =
            nizk::extract(grp_, from_payment, from_transfer)) {
      auto commitments = current_commitments(coin);
      DoubleSpendProof proof;
      proof.coin_hash = coin_hash;
      proof.a = commitments.a;
      proof.b = commitments.b;
      proof.secrets = *extracted;
      double_spent_[coin_hash] = DoubleSpentRecord{proof};
      spent_.erase(coin_hash);
      return TransferResult{std::move(proof)};
    }
    return Refusal{RefusalReason::kDoubleSpent, "coin already spent"};
  }

  // Ownership proof for the hand-off.
  bn::BigInt d = transfer_challenge(grp_, coin, new_a, new_b, datetime);
  auto commitments = current_commitments(coin);
  if (!nizk::verify_response(grp_, {commitments.a, commitments.b}, d,
                             response))
    return Refusal{RefusalReason::kBadProof,
                   "transfer ownership proof invalid"};

  TransferLink link;
  link.new_a = new_a;
  link.new_b = new_b;
  link.r1 = response.r1;
  link.r2 = response.r2;
  link.datetime = datetime;
  link.witness = id_;
  auto position = static_cast<std::uint32_t>(coin.transfers.size());
  auto signature =
      key_.sign(link.signed_payload(coin_hash, position), rng_);
  link.sig_e = signature.e;
  link.sig_s = signature.s;
  auto& chain = chains_[coin_hash];
  chain = coin.transfers;
  chain.push_back(link);
  return TransferResult{std::move(link)};
}

Outcome<CommittedValue> WitnessService::reveal_committed_value(
    const Hash256& coin_hash) {
  sync::MutexLock lock(mu_);
  auto it = commitments_.find(coin_hash);
  if (it == commitments_.end())
    return Refusal{RefusalReason::kStaleRequest,
                   "no commitment stored for this coin"};
  return it->second.value;
}

bool WitnessService::has_double_spend_record(const Hash256& coin_hash) const {
  sync::MutexLock lock(mu_);
  return double_spent_.contains(coin_hash);
}

namespace {
void put_hash256(wire::Writer& w, const Hash256& h) { w.put_bytes(h); }
Hash256 get_hash256(wire::Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32)
    throw wire::DecodeError("witness snapshot: bad hash width");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}
}  // namespace

std::vector<std::uint8_t> WitnessService::snapshot_state() const {
  sync::MutexLock lock(mu_);
  wire::Writer w;
  w.put_string("p2pcash/witness-snapshot/v1");
  w.put_u64(coins_signed_);
  w.put_u32(static_cast<std::uint32_t>(commitments_.size()));
  for (const auto& [hash, record] : commitments_) {
    put_hash256(w, hash);
    record.commitment.encode(w);
    record.value.encode(w);
    w.put_u8(record.consumed ? 1 : 0);
  }
  w.put_u32(static_cast<std::uint32_t>(spent_.size()));
  for (const auto& [hash, record] : spent_) {
    put_hash256(w, hash);
    record.transcript.encode(w);
    record.endorsement.encode(w);
  }
  w.put_u32(static_cast<std::uint32_t>(double_spent_.size()));
  for (const auto& [hash, record] : double_spent_) {
    put_hash256(w, hash);
    record.proof.encode(w);
  }
  w.put_u32(static_cast<std::uint32_t>(chains_.size()));
  for (const auto& [hash, chain] : chains_) {
    put_hash256(w, hash);
    w.put_u32(static_cast<std::uint32_t>(chain.size()));
    for (const auto& link : chain) link.encode(w);
  }
  return w.take();
}

void WitnessService::restore_state(std::span<const std::uint8_t> snapshot) {
  sync::MutexLock lock(mu_);
  wire::Reader r(snapshot);
  if (r.get_string() != "p2pcash/witness-snapshot/v1")
    throw wire::DecodeError("witness snapshot: bad magic");
  std::map<Hash256, CommitmentRecord> commitments;
  std::map<Hash256, SpentRecord> spent;
  std::map<Hash256, DoubleSpentRecord> double_spent;
  const std::uint64_t coins_signed = r.get_u64();
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    CommitmentRecord record;
    record.commitment = WitnessCommitment::decode(r);
    record.value = CommittedValue::decode(r);
    record.consumed = r.get_u8() != 0;
    commitments.emplace(hash, std::move(record));
  }
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    SpentRecord record;
    record.transcript = PaymentTranscript::decode(r);
    record.endorsement = WitnessEndorsement::decode(r);
    spent.emplace(hash, std::move(record));
  }
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    double_spent.emplace(hash, DoubleSpentRecord{DoubleSpendProof::decode(r)});
  }
  std::map<Hash256, std::vector<TransferLink>> chains;
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    std::vector<TransferLink> chain;
    for (std::uint32_t j = 0, m = r.get_u32(); j < m; ++j)
      chain.push_back(TransferLink::decode(r));
    chains.emplace(hash, std::move(chain));
  }
  r.expect_end();
  // Commit only after the whole snapshot parsed (basic exception safety).
  coins_signed_ = coins_signed;
  commitments_ = std::move(commitments);
  spent_ = std::move(spent);
  double_spent_ = std::move(double_spent);
  chains_ = std::move(chains);
}

}  // namespace p2pcash::ecash
