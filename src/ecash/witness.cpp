#include "ecash/witness.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "nizk/batch_verify.h"

namespace p2pcash::ecash {

namespace {
// Sub-delta tags inside one journaled record (see witness.h: one record
// per state transition, applied atomically on replay).
constexpr std::uint8_t kDeltaCommitment = 1;
constexpr std::uint8_t kDeltaSpent = 2;
constexpr std::uint8_t kDeltaDoubleSpent = 3;
constexpr std::uint8_t kDeltaChain = 4;
constexpr std::uint8_t kDeltaSpentErase = 5;
constexpr std::uint8_t kDeltaCounters = 6;
}  // namespace

WitnessService::WitnessService(group::SchnorrGroup grp,
                               sig::PublicKey broker_key, MerchantId id,
                               sig::KeyPair key, bn::Rng& rng)
    : grp_(std::move(grp)),
      broker_key_(std::move(broker_key)),
      id_(std::move(id)),
      key_(std::move(key)),
      rng_(rng) {}

Outcome<WitnessCommitment> WitnessService::request_commitment(
    const Hash256& coin_hash, const Hash256& nonce, Timestamp now) {
  store::StoreCommit store_commit(store_);
  Timestamp ttl;
  {
    sync::MutexLock lock(mu_);
    ttl = commitment_ttl_;
  }
  Stripe& s = stripe_for(coin_hash);
  sync::MutexLock lock(s.mu);
  auto it = s.commitments.find(coin_hash);
  if (it != s.commitments.end() && now < it->second.commitment.expires &&
      !it->second.consumed && it->second.commitment.nonce != nonce &&
      !s.spent.contains(coin_hash) && !s.double_spent.contains(coin_hash)) {
    // A different, still-pending transaction holds a live promise-to-sign
    // on this fresh coin ("must not issue new commitments ... until this
    // commitment expires").  Once the coin has a spend record the promise
    // is no longer dangerous — any further transcript can only yield a
    // double-spend proof — so new commitments are allowed.
    return Refusal{RefusalReason::kCommitmentOutstanding,
                   "live commitment exists until t_e"};
  }
  // Commit to what we currently know about the coin.
  CommittedValue value;
  if (auto ds = s.double_spent.find(coin_hash); ds != s.double_spent.end()) {
    value = CommittedValue::extracted(ds->second.proof.secrets);
  } else if (auto sp = s.spent.find(coin_hash); sp != s.spent.end()) {
    sync::MutexLock rng_lock(rng_mu_);
    value = CommittedValue::prior_transcript(sp->second.transcript, rng_);
  } else {
    sync::MutexLock rng_lock(rng_mu_);
    value = CommittedValue::fresh(rng_);
  }
  WitnessCommitment commitment;
  commitment.coin_hash = coin_hash;
  commitment.nonce = nonce;
  commitment.value_hash = value.hash();
  commitment.expires = now + ttl;
  commitment.witness = id_;
  {
    sync::MutexLock rng_lock(rng_mu_);
    commitment.witness_sig = key_.sign(commitment.signed_payload(), rng_);
  }
  s.commitments[coin_hash] =
      CommitmentRecord{commitment, std::move(value), /*consumed=*/false};
  wire::Writer w;
  delta_commitment(w, coin_hash, s.commitments[coin_hash]);
  journal(w);
  return commitment;
}

std::optional<std::size_t> WitnessService::own_entry_index(
    const Coin& coin, const Hash256& coin_hash) const {
  if (!check_witness_probe_sequence(coin, coin_hash)) return std::nullopt;
  for (std::size_t i = 0; i < coin.witnesses.size(); ++i) {
    if (coin.witnesses[i].merchant == id_) return i;
  }
  return std::nullopt;
}

std::optional<Outcome<SignResult>> WitnessService::sign_fast_path(
    const Hash256& coin_hash, const PaymentTranscript& transcript,
    bool faulty) const {
  const Stripe& s = stripe_for(coin_hash);
  sync::MutexLock lock(s.mu);
  // Coin already known double-spent — return the stored proof ("the
  // witness will either be spared all significant crypto operations").
  if (auto ds = s.double_spent.find(coin_hash); ds != s.double_spent.end()) {
    if (!faulty) return Outcome<SignResult>{SignResult{ds->second.proof}};
  }
  // Idempotent retry of the very same transcript: re-issue the endorsement
  // rather than treating the retransmission as a second spend.
  if (auto sp = s.spent.find(coin_hash);
      sp != s.spent.end() && sp->second.transcript == transcript) {
    return Outcome<SignResult>{SignResult{sp->second.endorsement}};
  }
  return std::nullopt;
}

Outcome<SignResult> WitnessService::sign_transcript(
    const PaymentTranscript& transcript, Timestamp now) {
  store::StoreCommit store_commit(store_);
  const Coin& coin = transcript.coin;
  const Hash256 coin_hash = coin.bare.coin_hash();
  const bool faulty = is_faulty();

  if (auto fast = sign_fast_path(coin_hash, transcript, faulty)) return *fast;

  // Full verification of the presented coin (ours? valid? unexpired?) and
  // its payment NIZK (1 Hash for d + 3 Exp).  Both run on immutable inputs
  // with no lock held; the spend state is re-checked in finish_sign.
  auto index = check_presented_coin(coin, coin_hash, now);
  if (!index) return index.refusal();
  if (!verify_transcript_proof(grp_, transcript))
    return Refusal{RefusalReason::kBadProof, "NIZK response invalid"};

  return finish_sign(transcript, coin_hash, now, faulty);
}

std::vector<Outcome<SignResult>> WitnessService::sign_transcript_batch(
    std::span<const PaymentTranscript> transcripts, Timestamp now) {
  store::StoreCommit store_commit(store_);
  const bool faulty = is_faulty();
  std::vector<std::optional<Outcome<SignResult>>> results(transcripts.size());
  std::vector<Hash256> hashes(transcripts.size());
  // Per-coin checks and fast-path answers first; every survivor contributes
  // its payment NIZK to one RLC-combined verification.
  std::vector<std::size_t> pending;
  std::vector<nizk::BatchItem> items;
  for (std::size_t i = 0; i < transcripts.size(); ++i) {
    const PaymentTranscript& t = transcripts[i];
    hashes[i] = t.coin.bare.coin_hash();
    if (auto fast = sign_fast_path(hashes[i], t, faulty)) {
      results[i] = std::move(*fast);
      continue;
    }
    auto index = check_presented_coin(t.coin, hashes[i], now);
    if (!index) {
      results[i] = index.refusal();
      continue;
    }
    // Mirror verify_transcript_proof exactly: same commitments, same
    // challenge, same response — the batch must accept iff it would.
    auto cc = current_commitments(t.coin);
    items.push_back(nizk::BatchItem{
        nizk::Commitments{cc.a, cc.b},
        payment_challenge(grp_, t.coin, t.merchant, t.datetime), t.resp});
    pending.push_back(i);
  }
  if (!items.empty()) {
    nizk::BatchResult verdict;
    {
      sync::MutexLock rng_lock(rng_mu_);
      verdict = nizk::batch_verify_responses(grp_, items, rng_);
    }
    std::size_t bad_pos = 0;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      if (bad_pos < verdict.bad_indices.size() &&
          verdict.bad_indices[bad_pos] == j) {
        ++bad_pos;
        results[i] = Refusal{RefusalReason::kBadProof, "NIZK response invalid"};
        continue;
      }
      // Index order here is what makes two same-coin transcripts in one
      // batch resolve exactly as sequential sign_transcript calls would.
      results[i] = finish_sign(transcripts[i], hashes[i], now, faulty);
    }
  }
  std::vector<Outcome<SignResult>> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(*r));
  return out;
}

Outcome<SignResult> WitnessService::finish_sign(
    const PaymentTranscript& transcript, const Hash256& coin_hash,
    Timestamp now, bool faulty) {
  (void)now;  // binding freshness is judged against the stored expiry
  std::optional<DoubleSpendProof> stale_evidence;
  bool signed_new = false;
  // The state machine runs under the coin's stripe; the two mu_-guarded
  // side effects (stale-owner evidence, the signing counter) are deferred
  // until the stripe is released — mu_ sits above kShard and must never be
  // acquired while a stripe is held.
  Outcome<SignResult> result = [&]() -> Outcome<SignResult> {
    const Coin& coin = transcript.coin;
    Stripe& s = stripe_for(coin_hash);
    sync::MutexLock lock(s.mu);

    // Re-check the fast-path states: another payment of this coin may have
    // raced us between the unlocked verification and this lock.
    if (auto ds = s.double_spent.find(coin_hash);
        ds != s.double_spent.end()) {
      if (!faulty) return SignResult{ds->second.proof};
    }
    if (auto sp = s.spent.find(coin_hash);
        sp != s.spent.end() && sp->second.transcript == transcript) {
      return SignResult{sp->second.endorsement};
    }

    // Transfer-chain consistency: the coin must answer to the commitments
    // we currently hold it to.  A previous owner spending a stale copy
    // after transferring the coin away incriminates itself: its payment
    // response and the recorded transfer-link response open the same
    // commitments under different challenges.
    static const std::vector<TransferLink> kEmptyChain;
    auto chain_it = s.chains.find(coin_hash);
    const auto& recorded =
        chain_it == s.chains.end() ? kEmptyChain : chain_it->second;
    if (coin.transfers != recorded) {
      const bool is_prefix =
          coin.transfers.size() < recorded.size() &&
          std::equal(coin.transfers.begin(), coin.transfers.end(),
                     recorded.begin());
      if (is_prefix && !faulty) {
        const TransferLink& next = recorded[coin.transfers.size()];
        nizk::ChallengeResponse from_transfer{
            transfer_challenge(grp_, coin, next.new_a, next.new_b,
                               next.datetime),
            nizk::Response{next.r1, next.r2}};
        nizk::ChallengeResponse from_payment{
            payment_challenge(grp_, coin, transcript.merchant,
                              transcript.datetime),
            transcript.resp};
        if (auto extracted =
                nizk::extract(grp_, from_transfer, from_payment)) {
          // The proof opens the *stale* commitments: it incriminates the
          // previous owner but must not invalidate the coin for its
          // current holder — so it is kept as evidence, not as a
          // double-spend record.
          auto commitments = current_commitments(coin);
          DoubleSpendProof proof;
          proof.coin_hash = coin_hash;
          proof.a = commitments.a;
          proof.b = commitments.b;
          proof.secrets = *extracted;
          stale_evidence = proof;
          // The stale owner's commitment (if it obtained one) is
          // discharged by this refusal — it must not block the rightful
          // current owner.
          if (auto commit_it = s.commitments.find(coin_hash);
              commit_it != s.commitments.end() &&
              payment_nonce(transcript.salt, transcript.merchant) ==
                  commit_it->second.commitment.nonce) {
            commit_it->second.consumed = true;
            wire::Writer w;
            delta_commitment(w, coin_hash, commit_it->second);
            journal(w);
          }
          return SignResult{std::move(proof)};
        }
      }
      return Refusal{RefusalReason::kDoubleSpent,
                     "stale or divergent transfer chain"};
    }

    // Enforce the commitment binding: nonce must equal h(salt || I_M)
    // ("refusing transaction if this check fails").
    auto commit_it = s.commitments.find(coin_hash);
    if (commit_it == s.commitments.end())
      return Refusal{RefusalReason::kStaleRequest,
                     "no commitment requested for this coin"};
    const WitnessCommitment& commitment = commit_it->second.commitment;
    if (now >= commitment.expires)
      return Refusal{RefusalReason::kStaleRequest, "commitment expired"};
    if (payment_nonce(transcript.salt, transcript.merchant) !=
        commitment.nonce)
      return Refusal{RefusalReason::kBadNonce,
                     "nonce does not bind this merchant"};

    // Double-spend check: a prior transcript with a different challenge
    // lets us extract the representations (paper §6 footnote 4).
    if (auto sp = s.spent.find(coin_hash); sp != s.spent.end() && !faulty) {
      const PaymentTranscript& prior = sp->second.transcript;
      nizk::ChallengeResponse first{
          payment_challenge(grp_, prior.coin, prior.merchant,
                            prior.datetime),
          prior.resp};
      nizk::ChallengeResponse second{
          payment_challenge(grp_, coin, transcript.merchant,
                            transcript.datetime),
          transcript.resp};
      auto extracted = nizk::extract(grp_, first, second);
      if (!extracted) {
        // Identical challenge but different transcript bytes: a malformed
        // replay; refuse without proof.
        return Refusal{RefusalReason::kDoubleSpent,
                       "coin already spent (identical challenge)"};
      }
      auto commitments = current_commitments(coin);
      DoubleSpendProof proof;
      proof.coin_hash = coin_hash;
      proof.a = commitments.a;
      proof.b = commitments.b;
      proof.secrets = *extracted;
      // Keep only the proof; drop the transcripts (privacy: do not reveal
      // where the coin was first spent).
      s.double_spent[coin_hash] = DoubleSpentRecord{proof};
      s.spent.erase(coin_hash);
      commit_it->second.consumed = true;  // promise discharged by the proof
      wire::Writer w;
      delta_double_spent(w, coin_hash, s.double_spent[coin_hash]);
      delta_spent_erase(w, coin_hash);
      delta_commitment(w, coin_hash, commit_it->second);
      journal(w);
      return SignResult{std::move(proof)};
    }

    // First (or faulty-witness) spend: countersign the transcript.
    WitnessEndorsement endorsement;
    endorsement.witness = id_;
    {
      sync::MutexLock rng_lock(rng_mu_);
      endorsement.signature = key_.sign(transcript.signed_payload(), rng_);
    }
    s.spent[coin_hash] = SpentRecord{transcript, endorsement};
    // The commitment is fulfilled; keep the record (the arbiter may ask us
    // to reveal v during conflict resolution) but allow fresh commitments.
    commit_it->second.consumed = true;
    signed_new = true;
    wire::Writer w;
    delta_spent(w, coin_hash, s.spent[coin_hash]);
    delta_commitment(w, coin_hash, commit_it->second);
    journal(w);
    return SignResult{std::move(endorsement)};
  }();
  if (stale_evidence || signed_new) {
    sync::MutexLock lock(mu_);
    if (stale_evidence)
      stale_owner_evidence_.push_back(std::move(*stale_evidence));
    if (signed_new) {
      ++coins_signed_;
      // Journaled as its own record: the counter lives under mu_, above the
      // stripe, so it cannot ride the spend record.  A torn tail between
      // the two costs one counter tick of an unacknowledged operation —
      // a performance statistic, never a safety invariant.
      wire::Writer w;
      delta_counters(w, coins_signed_);
      journal(w);
    }
  }
  return result;
}

Outcome<std::size_t> WitnessService::check_presented_coin(
    const Coin& coin, const Hash256& coin_hash, Timestamp now) const {
  auto index = own_entry_index(coin, coin_hash);
  if (!index)
    return Refusal{RefusalReason::kWrongWitness,
                   "coin is not assigned to this witness"};
  // Verify our broker-signed range entry (1 Ver) and the bare coin's blind
  // signature (4 Exp + 2 Hash); an invalid coin is never countersigned.
  const SignedWitnessEntry& entry = coin.witnesses[*index];
  if (entry.version != coin.bare.info.list_version)
    return Refusal{RefusalReason::kInvalidCoin, "entry/info version mismatch"};
  if (!sig::verify(grp_, broker_key_, entry.signed_payload(),
                   entry.broker_sig))
    return Refusal{RefusalReason::kBadSignature, "bad broker range signature"};
  if (now >= coin.bare.info.soft_expiry)
    return Refusal{RefusalReason::kExpired, "coin past soft expiry"};
  if (!blindsig::verify(grp_, broker_key_.y, coin.bare.info.bytes(),
                        coin.bare.blind_message(), coin.bare.sig))
    return Refusal{RefusalReason::kInvalidCoin, "bad broker blind signature"};
  if (auto chain = verify_transfer_chain(grp_, coin); !chain)
    return chain.refusal();
  return *index;
}

Outcome<std::variant<TransferLink, DoubleSpendProof>>
WitnessService::sign_transfer(const Coin& coin, const bn::BigInt& new_a,
                              const bn::BigInt& new_b,
                              const nizk::Response& response,
                              Timestamp datetime, Timestamp now) {
  using TransferResult = std::variant<TransferLink, DoubleSpendProof>;
  store::StoreCommit store_commit(store_);
  const Hash256 coin_hash = coin.bare.coin_hash();
  const bool faulty = is_faulty();

  // Fast path without crypto: the coin is already known double-spent.
  {
    const Stripe& s = stripe_for(coin_hash);
    sync::MutexLock lock(s.mu);
    if (auto ds = s.double_spent.find(coin_hash);
        ds != s.double_spent.end() && !faulty) {
      return TransferResult{ds->second.proof};
    }
  }

  // Unlocked crypto on immutable inputs: the presented coin and the
  // ownership proof.  The proof verdict is only consulted on the
  // first-transfer branch, matching the original check order.
  auto index = check_presented_coin(coin, coin_hash, now);
  if (!index) return index.refusal();
  if (index.value() != 0)
    return Refusal{RefusalReason::kWrongWitness,
                   "transfers are endorsed by witness slot 0 only"};
  const bn::BigInt d = transfer_challenge(grp_, coin, new_a, new_b, datetime);
  const auto commitments = current_commitments(coin);
  const bool ownership_ok = nizk::verify_response(
      grp_, {commitments.a, commitments.b}, d, response);

  Stripe& s = stripe_for(coin_hash);
  sync::MutexLock lock(s.mu);

  // Re-check under the stripe: a racing payment/transfer may have landed.
  if (auto ds = s.double_spent.find(coin_hash);
      ds != s.double_spent.end() && !faulty) {
    return TransferResult{ds->second.proof};
  }

  // Chain consistency with our records.
  static const std::vector<TransferLink> kEmptyChain;
  auto chain_it = s.chains.find(coin_hash);
  const auto& recorded =
      chain_it == s.chains.end() ? kEmptyChain : chain_it->second;
  if (coin.transfers != recorded) {
    const bool is_prefix =
        coin.transfers.size() < recorded.size() &&
        std::equal(coin.transfers.begin(), coin.transfers.end(),
                   recorded.begin());
    if (!is_prefix)
      return Refusal{RefusalReason::kDoubleSpent,
                     "stale or divergent transfer chain"};
    const TransferLink& next = recorded[coin.transfers.size()];
    // Identical re-request (network retry): re-issue the recorded link.
    if (next.new_a == new_a && next.new_b == new_b &&
        next.datetime == datetime &&
        nizk::Response{next.r1, next.r2} == response) {
      return TransferResult{next};
    }
    if (faulty) return Refusal{RefusalReason::kInternal, "faulty witness"};
    // Double transfer: the recorded link and this request answer the same
    // commitments under different challenges — extract.
    nizk::ChallengeResponse first{
        transfer_challenge(grp_, coin, next.new_a, next.new_b, next.datetime),
        nizk::Response{next.r1, next.r2}};
    nizk::ChallengeResponse second{d, response};
    if (auto extracted = nizk::extract(grp_, first, second)) {
      DoubleSpendProof proof;
      proof.coin_hash = coin_hash;
      proof.a = commitments.a;
      proof.b = commitments.b;
      proof.secrets = *extracted;
      s.double_spent[coin_hash] = DoubleSpentRecord{proof};
      wire::Writer w;
      delta_double_spent(w, coin_hash, s.double_spent[coin_hash]);
      journal(w);
      return TransferResult{std::move(proof)};
    }
    return Refusal{RefusalReason::kDoubleSpent,
                   "coin already transferred onward"};
  }

  // A spent coin cannot be transferred; the attempt incriminates the owner.
  if (auto sp = s.spent.find(coin_hash); sp != s.spent.end() && !faulty) {
    const PaymentTranscript& prior = sp->second.transcript;
    nizk::ChallengeResponse from_payment{
        payment_challenge(grp_, prior.coin, prior.merchant, prior.datetime),
        prior.resp};
    nizk::ChallengeResponse from_transfer{d, response};
    if (auto extracted = nizk::extract(grp_, from_payment, from_transfer)) {
      DoubleSpendProof proof;
      proof.coin_hash = coin_hash;
      proof.a = commitments.a;
      proof.b = commitments.b;
      proof.secrets = *extracted;
      s.double_spent[coin_hash] = DoubleSpentRecord{proof};
      s.spent.erase(coin_hash);
      wire::Writer w;
      delta_double_spent(w, coin_hash, s.double_spent[coin_hash]);
      delta_spent_erase(w, coin_hash);
      journal(w);
      return TransferResult{std::move(proof)};
    }
    return Refusal{RefusalReason::kDoubleSpent, "coin already spent"};
  }

  // Ownership proof for the hand-off (verified above, outside the lock).
  if (!ownership_ok)
    return Refusal{RefusalReason::kBadProof,
                   "transfer ownership proof invalid"};

  TransferLink link;
  link.new_a = new_a;
  link.new_b = new_b;
  link.r1 = response.r1;
  link.r2 = response.r2;
  link.datetime = datetime;
  link.witness = id_;
  auto position = static_cast<std::uint32_t>(coin.transfers.size());
  {
    sync::MutexLock rng_lock(rng_mu_);
    auto signature = key_.sign(link.signed_payload(coin_hash, position), rng_);
    link.sig_e = signature.e;
    link.sig_s = signature.s;
  }
  auto& chain = s.chains[coin_hash];
  chain = coin.transfers;
  chain.push_back(link);
  wire::Writer w;
  delta_chain(w, coin_hash, chain);
  journal(w);
  return TransferResult{std::move(link)};
}

Outcome<CommittedValue> WitnessService::reveal_committed_value(
    const Hash256& coin_hash) {
  Stripe& s = stripe_for(coin_hash);
  sync::MutexLock lock(s.mu);
  auto it = s.commitments.find(coin_hash);
  if (it == s.commitments.end())
    return Refusal{RefusalReason::kStaleRequest,
                   "no commitment stored for this coin"};
  return it->second.value;
}

bool WitnessService::has_double_spend_record(const Hash256& coin_hash) const {
  const Stripe& s = stripe_for(coin_hash);
  sync::MutexLock lock(s.mu);
  return s.double_spent.contains(coin_hash);
}

namespace {
void put_hash256(wire::Writer& w, const Hash256& h) { w.put_bytes(h); }
Hash256 get_hash256(wire::Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32)
    throw wire::DecodeError("witness snapshot: bad hash width");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}
}  // namespace

std::vector<std::uint8_t> WitnessService::snapshot_state() const {
  // Stripes are keyed by the hash's most-significant prefix, so merging
  // them in stripe order reproduces the global Hash256 order — and thus
  // the exact bytes — of the pre-sharding single-map snapshot.  Stripes
  // are locked one at a time (holding two is a lock-order violation); a
  // concurrent writer can interleave, so snapshots of a live service are
  // per-stripe consistent, same as any point-in-time read would be.
  std::uint64_t coins_signed;
  {
    sync::MutexLock lock(mu_);
    coins_signed = coins_signed_;
  }
  std::map<Hash256, CommitmentRecord> commitments;
  std::map<Hash256, SpentRecord> spent;
  std::map<Hash256, DoubleSpentRecord> double_spent;
  std::map<Hash256, std::vector<TransferLink>> chains;
  for (const Stripe& s : stripes_) {
    sync::MutexLock lock(s.mu);
    commitments.insert(s.commitments.begin(), s.commitments.end());
    spent.insert(s.spent.begin(), s.spent.end());
    double_spent.insert(s.double_spent.begin(), s.double_spent.end());
    chains.insert(s.chains.begin(), s.chains.end());
  }
  wire::Writer w;
  w.put_string("p2pcash/witness-snapshot/v1");
  w.put_u64(coins_signed);
  w.put_u32(static_cast<std::uint32_t>(commitments.size()));
  for (const auto& [hash, record] : commitments) {
    put_hash256(w, hash);
    record.commitment.encode(w);
    record.value.encode(w);
    w.put_u8(record.consumed ? 1 : 0);
  }
  w.put_u32(static_cast<std::uint32_t>(spent.size()));
  for (const auto& [hash, record] : spent) {
    put_hash256(w, hash);
    record.transcript.encode(w);
    record.endorsement.encode(w);
  }
  w.put_u32(static_cast<std::uint32_t>(double_spent.size()));
  for (const auto& [hash, record] : double_spent) {
    put_hash256(w, hash);
    record.proof.encode(w);
  }
  w.put_u32(static_cast<std::uint32_t>(chains.size()));
  for (const auto& [hash, chain] : chains) {
    put_hash256(w, hash);
    w.put_u32(static_cast<std::uint32_t>(chain.size()));
    for (const auto& link : chain) link.encode(w);
  }
  return w.take();
}

void WitnessService::restore_state(std::span<const std::uint8_t> snapshot) {
  wire::Reader r(snapshot);
  if (r.get_string() != "p2pcash/witness-snapshot/v1")
    throw wire::DecodeError("witness snapshot: bad magic");
  // Parse the whole snapshot into per-stripe staging first (basic exception
  // safety: nothing is installed unless everything decoded), then install
  // stripe by stripe.
  struct Staging {
    std::map<Hash256, CommitmentRecord> commitments;
    std::map<Hash256, SpentRecord> spent;
    std::map<Hash256, DoubleSpentRecord> double_spent;
    std::map<Hash256, std::vector<TransferLink>> chains;
  };
  std::array<Staging, kStripeCount> staging;
  const std::uint64_t coins_signed = r.get_u64();
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    CommitmentRecord record;
    record.commitment = WitnessCommitment::decode(r);
    record.value = CommittedValue::decode(r);
    record.consumed = r.get_u8() != 0;
    staging[stripe_index(hash)].commitments.emplace(hash, std::move(record));
  }
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    SpentRecord record;
    record.transcript = PaymentTranscript::decode(r);
    record.endorsement = WitnessEndorsement::decode(r);
    staging[stripe_index(hash)].spent.emplace(hash, std::move(record));
  }
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    staging[stripe_index(hash)].double_spent.emplace(
        hash, DoubleSpentRecord{DoubleSpendProof::decode(r)});
  }
  for (std::uint32_t i = 0, n = r.get_u32(); i < n; ++i) {
    Hash256 hash = get_hash256(r);
    std::vector<TransferLink> chain;
    for (std::uint32_t j = 0, m = r.get_u32(); j < m; ++j)
      chain.push_back(TransferLink::decode(r));
    staging[stripe_index(hash)].chains.emplace(hash, std::move(chain));
  }
  r.expect_end();
  for (std::size_t i = 0; i < kStripeCount; ++i) {
    Stripe& s = stripes_[i];
    sync::MutexLock lock(s.mu);
    s.commitments = std::move(staging[i].commitments);
    s.spent = std::move(staging[i].spent);
    s.double_spent = std::move(staging[i].double_spent);
    s.chains = std::move(staging[i].chains);
  }
  {
    sync::MutexLock lock(mu_);
    coins_signed_ = coins_signed;
  }
  // An externally supplied snapshot supersedes the journal: compact so the
  // store and the in-memory state agree again.
  if (store_ != nullptr) store_->checkpoint(snapshot_state());
}

// ---- store journaling ------------------------------------------------------

void WitnessService::journal(const wire::Writer& w) {
  if (store_ != nullptr && w.size() > 0) store_->append(w.bytes());
}

void WitnessService::delta_commitment(wire::Writer& w, const Hash256& hash,
                                      const CommitmentRecord& record) {
  w.put_u8(kDeltaCommitment);
  put_hash256(w, hash);
  record.commitment.encode(w);
  record.value.encode(w);
  w.put_u8(record.consumed ? 1 : 0);
}

void WitnessService::delta_spent(wire::Writer& w, const Hash256& hash,
                                 const SpentRecord& record) {
  w.put_u8(kDeltaSpent);
  put_hash256(w, hash);
  record.transcript.encode(w);
  record.endorsement.encode(w);
}

void WitnessService::delta_double_spent(wire::Writer& w, const Hash256& hash,
                                        const DoubleSpentRecord& record) {
  w.put_u8(kDeltaDoubleSpent);
  put_hash256(w, hash);
  record.proof.encode(w);
}

void WitnessService::delta_chain(wire::Writer& w, const Hash256& hash,
                                 const std::vector<TransferLink>& chain) {
  w.put_u8(kDeltaChain);
  put_hash256(w, hash);
  w.put_u32(static_cast<std::uint32_t>(chain.size()));
  for (const auto& link : chain) link.encode(w);
}

void WitnessService::delta_spent_erase(wire::Writer& w, const Hash256& hash) {
  w.put_u8(kDeltaSpentErase);
  put_hash256(w, hash);
}

void WitnessService::delta_counters(wire::Writer& w,
                                    std::uint64_t coins_signed) {
  w.put_u8(kDeltaCounters);
  w.put_u64(coins_signed);
}

void WitnessService::apply_delta(std::span<const std::uint8_t> delta) {
  wire::Reader r(delta);
  while (!r.at_end()) {
    switch (r.get_u8()) {
      case kDeltaCommitment: {
        Hash256 hash = get_hash256(r);
        CommitmentRecord record;
        record.commitment = WitnessCommitment::decode(r);
        record.value = CommittedValue::decode(r);
        record.consumed = r.get_u8() != 0;
        Stripe& s = stripe_for(hash);
        sync::MutexLock lock(s.mu);
        s.commitments[hash] = std::move(record);
        break;
      }
      case kDeltaSpent: {
        Hash256 hash = get_hash256(r);
        SpentRecord record;
        record.transcript = PaymentTranscript::decode(r);
        record.endorsement = WitnessEndorsement::decode(r);
        Stripe& s = stripe_for(hash);
        sync::MutexLock lock(s.mu);
        s.spent[hash] = std::move(record);
        break;
      }
      case kDeltaDoubleSpent: {
        Hash256 hash = get_hash256(r);
        DoubleSpentRecord record{DoubleSpendProof::decode(r)};
        Stripe& s = stripe_for(hash);
        sync::MutexLock lock(s.mu);
        s.double_spent[hash] = std::move(record);
        break;
      }
      case kDeltaChain: {
        Hash256 hash = get_hash256(r);
        std::vector<TransferLink> chain;
        for (std::uint32_t j = 0, m = r.get_u32(); j < m; ++j)
          chain.push_back(TransferLink::decode(r));
        Stripe& s = stripe_for(hash);
        sync::MutexLock lock(s.mu);
        s.chains[hash] = std::move(chain);
        break;
      }
      case kDeltaSpentErase: {
        Hash256 hash = get_hash256(r);
        Stripe& s = stripe_for(hash);
        sync::MutexLock lock(s.mu);
        s.spent.erase(hash);
        break;
      }
      case kDeltaCounters: {
        std::uint64_t coins_signed = r.get_u64();
        sync::MutexLock lock(mu_);
        coins_signed_ = coins_signed;
        break;
      }
      default:
        throw wire::DecodeError("witness delta: unknown tag");
    }
  }
}

void WitnessService::attach_store(store::Store& store) {
  // Re-attach after a crash/restart: the previous store may already be
  // destroyed, so drop the pointer before restore_state can checkpoint
  // through it.
  store_ = nullptr;
  if (store.empty()) {
    // Fresh store: a genesis checkpoint makes the (empty but versioned)
    // snapshot durable before the first operation is acknowledged.
    store_ = &store;
    store.checkpoint(snapshot_state());
    return;
  }
  store::Recovered rec = store.recover();
  restore_state(rec.snapshot);  // store_ still unset: no re-checkpoint
  for (const auto& delta : rec.deltas) apply_delta(delta);
  store_ = &store;
}

void WitnessService::checkpoint_store() {
  if (store_ != nullptr) store_->checkpoint(snapshot_state());
}

}  // namespace p2pcash::ecash
