// common.h — shared vocabulary types for the e-cash core.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace p2pcash::ecash {

/// Protocol time in milliseconds. Under the discrete-event simulator this is
/// virtual time; in the examples it is wall-clock milliseconds since epoch.
/// All protocol methods take `now` explicitly — no global clock.
using Timestamp = std::int64_t;

/// Merchant identifier I_M (a stable, broker-registered name).
using MerchantId = std::string;

/// Reserved counterparty id for paying a coin *to the broker* (the
/// denomination-exchange extension): the coin's witness countersigns the
/// transcript exactly as for a merchant payment, so exchanges get the same
/// real-time double-spend protection.  Never a valid merchant name.
inline const char kBrokerCounterparty[] = "@broker";

/// Why a protocol participant refused a request.
enum class RefusalReason : std::uint8_t {
  kInvalidCoin,            ///< broker signature / structure check failed
  kWrongWitness,           ///< this node is not the coin's witness
  kExpired,                ///< outside the coin's validity window
  kDoubleSpent,            ///< coin seen before; proof attached where possible
  kAlreadyDeposited,       ///< same merchant re-deposited the same coin
  kCommitmentOutstanding,  ///< a live commitment exists for this coin
  kBadNonce,               ///< nonce != h(salt || I_M)
  kBadProof,               ///< NIZK response failed verification
  kBadSignature,           ///< a required plain signature failed
  kUnknownMerchant,        ///< depositor/witness not registered at the broker
  kStaleRequest,           ///< commitment expired or timestamp out of window
  kDuplicate,              ///< redundant delivery of an already-recorded item
  kInternal,               ///< unexpected condition
};

const char* to_string(RefusalReason reason);

/// A refusal with a human-readable detail string.
struct Refusal {
  RefusalReason reason;
  std::string detail;
};

/// Either a successful value or a protocol refusal.  Protocol refusals are
/// expected outcomes (e.g. "coin already spent"), not programming errors, so
/// they are values rather than exceptions (Core Guidelines E.3).
template <typename T>
class Outcome {
 public:
  Outcome(T value) : state_(std::move(value)) {}  // NOLINT — intended implicit
  Outcome(Refusal refusal) : state_(std::move(refusal)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(state_); }
  T& value() & { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  /// Precondition: !ok().
  const Refusal& refusal() const { return std::get<Refusal>(state_); }

 private:
  std::variant<T, Refusal> state_;
};

/// Money amounts in cents — "mini-payments" are coin-sized (paper §1), so
/// 32-bit cents are ample.
using Cents = std::uint32_t;

}  // namespace p2pcash::ecash
