// annotated.h — synchronization primitives with machine-checked discipline.
//
// Two layers of defence before the multithreaded node runtime lands:
//
// 1. **Compile-time lock discipline** (clang only).  Every wrapper below
//    carries clang thread-safety capability attributes, so a field declared
//    `P2P_GUARDED_BY(mu_)` that is touched without `mu_` held is a compile
//    error under `-Wthread-safety` (CI runs a clang lane with the warning
//    promoted to an error; see docs/STATIC_ANALYSIS.md).  On GCC the
//    attribute macros expand to nothing and the wrappers behave exactly
//    like std::mutex / std::lock_guard.
//
// 2. **Runtime lock-order checking** (src/sync/lock_order.h).  Each Mutex
//    registers its acquisitions with a per-process acquisition-graph
//    tracker that detects lock-order cycles online — the deadlock class
//    TSan does not catch.  Checking is a single relaxed atomic load when
//    disabled (the release default); debug and sanitizer builds enable it
//    by default, and tests can force it on programmatically.
//
// Vocabulary (mirrors clang's official names, P2P_-prefixed):
//   P2P_CAPABILITY(name)       — class is a lockable capability
//   P2P_SCOPED_CAPABILITY      — RAII object acquiring/releasing one
//   P2P_GUARDED_BY(mu)         — field only touched while mu is held
//   P2P_PT_GUARDED_BY(mu)      — pointee only touched while mu is held
//   P2P_REQUIRES(mu)           — function must be called with mu held
//   P2P_REQUIRES_SHARED(mu)    — ... with at least a shared hold on mu
//   P2P_ACQUIRE / P2P_RELEASE  — function acquires / releases mu
//   P2P_EXCLUDES(mu)           — function must NOT be called with mu held
//   P2P_NO_THREAD_SAFETY_ANALYSIS — opt a function out (needs a comment
//                                    explaining the out-of-band ordering)

#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "sync/lock_order.h"

// ---------------------------------------------------------------------------
// Attribute macros: real attributes under clang, no-ops elsewhere.
// ---------------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define P2P_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define P2P_TS_ATTRIBUTE(x)  // no-op: GCC/MSVC have no thread-safety analysis
#endif

#define P2P_CAPABILITY(x) P2P_TS_ATTRIBUTE(capability(x))
#define P2P_SCOPED_CAPABILITY P2P_TS_ATTRIBUTE(scoped_lockable)
#define P2P_GUARDED_BY(x) P2P_TS_ATTRIBUTE(guarded_by(x))
#define P2P_PT_GUARDED_BY(x) P2P_TS_ATTRIBUTE(pt_guarded_by(x))
#define P2P_REQUIRES(...) \
  P2P_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define P2P_REQUIRES_SHARED(...) \
  P2P_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define P2P_ACQUIRE(...) P2P_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define P2P_ACQUIRE_SHARED(...) \
  P2P_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define P2P_RELEASE(...) P2P_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define P2P_RELEASE_SHARED(...) \
  P2P_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define P2P_TRY_ACQUIRE(...) \
  P2P_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define P2P_EXCLUDES(...) P2P_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define P2P_ASSERT_CAPABILITY(x) P2P_TS_ATTRIBUTE(assert_capability(x))
#define P2P_RETURN_CAPABILITY(x) P2P_TS_ATTRIBUTE(lock_returned(x))
#define P2P_NO_THREAD_SAFETY_ANALYSIS \
  P2P_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace p2pcash::sync {

/// Named lock-hierarchy levels (see docs/STATIC_ANALYSIS.md).  The runtime
/// checker requires acquisitions to strictly *descend*: while holding a
/// level-L lock, only locks with level < L (or unranked, level 0) may be
/// acquired.  Levels encode the call graph's legal nesting:
///
///   kTransport (65)  transport.net — TCP conn registry, per-peer outbound
///                    queues and stats.  Held only for queue append/flush
///                    bookkeeping; never while running user code.
///   kTransportTimer (63)
///                    transport.timers — io-loop timer heap.  Fired timers
///                    are extracted under the lock and dispatched after
///                    release, so mailbox/pool locks never nest inside it.
///   kMailbox (60)    transport.mailbox — per-endpoint strand queues.  A
///                    drain swaps the queue out under the lock and runs
///                    handlers with it released; handler code (service
///                    locks, kService and below) therefore never executes
///                    under a mailbox lock.
///   kPool (55)       verify.worker_pool — task queue; tasks run with the
///                    queue lock released, so no lock below is ever taken
///                    under it (and submitting while holding a service
///                    lock is flagged as the liveness hazard it is).
///   kService (50)    ecash.broker, ecash.witness — service entry points;
///                    outermost, may call into group caches below.
///   kShard (45)      ecash.witness_stripe — per-stripe coin-state locks.
///                    All stripes share the level, so holding two stripes
///                    at once is reported (stripes must be visited
///                    sequentially, never nested).
///   kStore (42)      store.log — durable log store serialization (append
///                    buffer, group-commit state).  Below kService and
///                    kShard so broker/witness code may journal a delta
///                    while holding its own service or stripe lock; the
///                    group-commit leader releases it across fsync.
///   kActors (40)     actors.peer_health — breaker bookkeeping.
///   kShardRng (35)   ecash.witness_rng — shared-RNG draw guard, taken
///                    inside a stripe for countersigning.
///   kTracer (30)     obs.tracer — open-span map; calls into registry/sink.
///   kRegistry (20)   obs.metrics_registry — instrument maps; exports call
///                    into histograms/sink/group collectors below.
///   kSink (10)       obs.trace_sink, obs.histogram — leaf buffers.
///   kStoreVfs (8)    store.vfs — in-memory VFS file map (MemVfs).  A leaf:
///                    reachable from under store.log during append/sync and
///                    from the chaos engine's crash hooks.
///   kGroupCache (5)  group.fast_base_cache, group.hash_cache — leaf-level
///                    lazy caches reachable from any exponentiation.
namespace level {
inline constexpr int kTransport = 65;
inline constexpr int kTransportTimer = 63;
inline constexpr int kMailbox = 60;
inline constexpr int kPool = 55;
inline constexpr int kService = 50;
inline constexpr int kShard = 45;
inline constexpr int kStore = 42;
inline constexpr int kActors = 40;
inline constexpr int kShardRng = 35;
inline constexpr int kTracer = 30;
inline constexpr int kRegistry = 20;
inline constexpr int kSink = 10;
inline constexpr int kStoreVfs = 8;
inline constexpr int kGroupCache = 5;
}  // namespace level

/// Annotated exclusive mutex.  `name` appears in lock-order violation
/// reports; `level` is the optional hierarchy rank (see sync::level) —
/// acquiring a higher-level lock while holding a lower-level one is
/// reported even before any cycle forms.
class P2P_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "sync.mutex", int level = 0)
      : node_{name, level} {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() P2P_ACQUIRE() {
    lock_order::on_acquire(&node_);
    mu_.lock();
  }
  void unlock() P2P_RELEASE() {
    mu_.unlock();
    lock_order::on_release(&node_);
  }
  bool try_lock() P2P_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_order::on_try_acquire(&node_);
    return true;
  }

  const char* name() const { return node_.name; }
  int level() const { return node_.level; }

 private:
  std::mutex mu_;
  lock_order::LockNode node_;
};

/// Annotated shared (reader/writer) mutex.  The lock-order tracker treats
/// shared and exclusive holds identically: a shared acquisition can still
/// participate in a deadlock cycle against an exclusive one.
class P2P_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = "sync.shared_mutex", int level = 0)
      : node_{name, level} {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() P2P_ACQUIRE() {
    lock_order::on_acquire(&node_);
    mu_.lock();
  }
  void unlock() P2P_RELEASE() {
    mu_.unlock();
    lock_order::on_release(&node_);
  }
  void lock_shared() P2P_ACQUIRE_SHARED() {
    lock_order::on_acquire(&node_);
    mu_.lock_shared();
  }
  void unlock_shared() P2P_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_order::on_release(&node_);
  }

  const char* name() const { return node_.name; }
  int level() const { return node_.level; }

 private:
  std::shared_mutex mu_;
  lock_order::LockNode node_;
};

/// RAII exclusive lock (the annotated std::lock_guard).
class P2P_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) P2P_ACQUIRE(mu) : mu_(&mu), shared_(nullptr) {
    mu_->lock();
  }
  explicit MutexLock(SharedMutex& mu) P2P_ACQUIRE(mu)
      : mu_(nullptr), shared_(&mu) {
    shared_->lock();
  }
  ~MutexLock() P2P_RELEASE() {
    if (mu_) mu_->unlock();
    if (shared_) shared_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
  SharedMutex* shared_;
};

/// Condition variable usable with sync::Mutex.  Built on
/// std::condition_variable_any, which releases/reacquires through the
/// annotated lock()/unlock(), so the lock-order tracker sees a wait as a
/// release followed by a fresh acquisition — re-waking inside a wait can
/// never corrupt the held-locks stack.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified.  The caller must hold `mu`; it is released
  /// while blocked and re-held on return (spurious wakeups possible — use
  /// the predicate overload unless the loop is explicit at the call site).
  void wait(Mutex& mu) P2P_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until `pred()` holds (checked with `mu` held).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) P2P_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// RAII shared (reader) lock.
class P2P_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) P2P_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() P2P_RELEASE() { mu_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace p2pcash::sync
