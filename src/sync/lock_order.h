// lock_order.h — runtime lock-order (deadlock-potential) checker.
//
// Every sync::Mutex / sync::SharedMutex carries a LockNode with a stable
// name and an optional hierarchy level.  On each acquisition the tracker
// records "held-before" edges from every lock the acquiring thread already
// holds to the lock being acquired, keyed by lock *name* (so all instances
// of e.g. "ecash.witness" share one node in the order graph, which is what
// makes A→B in one thread + B→A in another detectable even across distinct
// instances).  A new edge that creates a cycle in the held-before graph is
// a lock-order inversion: some interleaving of the two call sites
// deadlocks, even if this run did not.  TSan does not detect this class —
// it needs the deadlock to actually *happen* — which is why the tracker
// exists alongside the TSan CI lane.
//
// Violations detected:
//   * kInversion  — acquiring B while holding A when the graph already has
//                   a B→…→A path (cycle).  Report names both lock names
//                   and the existing path.
//   * kReentrancy — re-acquiring the exact same instance already held by
//                   this thread (std::mutex UB; would self-deadlock).
//   * kHierarchy  — acquiring a lock whose level is >= the level of a held
//                   lock when both declare non-zero levels.  The hierarchy
//                   (docs/STATIC_ANALYSIS.md) orders subsystems so this
//                   catches inversions on the *first* bad acquisition,
//                   before the reverse edge is ever observed.
//
// Overhead: when disabled (the Release default) each lock/unlock costs one
// relaxed atomic load.  When enabled, acquisition takes a short critical
// section on an internal std::mutex (deliberately a plain std::mutex — the
// tracker cannot track itself).  Debug and sanitizer builds enable the
// checker at startup via P2PCASH_LOCK_ORDER_DEFAULT_ON (see
// src/sync/CMakeLists.txt); tests force it on with set_enabled(true).
//
// The default violation handler prints the report to stderr and aborts
// (fail-fast, as a deadlock in production would be strictly worse).  Tests
// install a capturing handler with set_violation_handler().

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace p2pcash::sync::lock_order {

/// Per-mutex registration record.  Embedded by value in sync::Mutex /
/// sync::SharedMutex; the tracker keys the order graph by `name`, so give
/// every distinct lock *role* a distinct name ("ecash.broker",
/// "obs.trace_sink", ...).  `level` is the optional hierarchy rank; 0 means
/// "unranked" and opts out of hierarchy checking (cycle detection still
/// applies).
struct LockNode {
  const char* name;
  int level;
};

enum class ViolationKind : uint8_t {
  kInversion,   // cycle in the held-before graph
  kReentrancy,  // same instance acquired twice by one thread
  kHierarchy,   // level ordering violated on first acquisition
};

struct Violation {
  ViolationKind kind;
  std::string acquiring;  // name of the lock being acquired
  std::string held;       // name of the (most relevant) lock already held
  std::string detail;     // human-readable report incl. the cycle path
};

using ViolationHandler = std::function<void(const Violation&)>;

/// Enables/disables tracking process-wide.  Disabling does not clear the
/// learned graph; use reset() for that.
void set_enabled(bool on);
bool enabled();

/// Replaces the violation handler (nullptr restores the default
/// print-and-abort handler).  Returns nothing; tests capture violations by
/// closing over their own state.
void set_violation_handler(ViolationHandler handler);

/// Clears the learned held-before graph and this process's violation
/// count.  Thread-local held stacks are untouched (they empty naturally as
/// locks release).  Tests call this between cases so edges learned by one
/// case don't leak into the next.
void reset();

/// Number of violations reported since start/reset (any kind).
uint64_t violation_count();

/// Hooks called by sync::Mutex / sync::SharedMutex.  on_acquire runs
/// *before* the underlying lock is taken (so the report fires before a
/// real deadlock can wedge the process); on_try_acquire runs after a
/// successful try_lock (a trylock cannot deadlock, so it only records
/// edges and the held stack, never reports inversions).
void on_acquire(const LockNode* node);
void on_try_acquire(const LockNode* node);
void on_release(const LockNode* node);

}  // namespace p2pcash::sync::lock_order
