#include "sync/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

namespace p2pcash::sync::lock_order {
namespace {

std::atomic<bool> g_enabled{
#ifdef P2PCASH_LOCK_ORDER_DEFAULT_ON
    true
#else
    false
#endif
};
std::atomic<uint64_t> g_violations{0};

// Guards the order graph and the handler slot.  Deliberately a plain
// std::mutex: the tracker cannot track itself, and every critical section
// below is leaf-level (no tracked lock is ever acquired inside it).
std::mutex& graph_mu() {
  static std::mutex mu;
  return mu;
}

// Held-before graph keyed by lock *name*: edges()[A] contains B iff some
// thread acquired B while holding A.  std::map/std::set (not unordered_*)
// so violation reports list cycle paths in a deterministic order.
using EdgeMap = std::map<std::string, std::set<std::string>>;
EdgeMap& edges() {
  static EdgeMap* m = new EdgeMap();  // leaked: outlives static dtors
  return *m;
}

ViolationHandler& handler_slot() {
  static ViolationHandler* h = new ViolationHandler();
  return *h;
}

// Per-thread stack of currently held lock instances, in acquisition order.
std::vector<const LockNode*>& held_stack() {
  static thread_local std::vector<const LockNode*> v;
  return v;
}

/// DFS over edges() from `from` toward `to`; on success fills `path` with
/// the node names from `from` to `to` inclusive.  Caller holds graph_mu().
bool find_path(const EdgeMap& g, const std::string& from,
               const std::string& to, std::set<std::string>& visited,
               std::vector<std::string>& path) {
  if (!visited.insert(from).second) return false;
  path.push_back(from);
  if (from == to) return true;
  auto it = g.find(from);
  if (it != g.end()) {
    for (const std::string& next : it->second) {
      if (find_path(g, next, to, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

void report(Violation v) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(graph_mu());
    handler = handler_slot();
  }
  if (handler) {
    // Called without graph_mu() held so a test handler may inspect the
    // tracker (but must not acquire tracked locks).
    handler(v);
    return;
  }
  std::fprintf(stderr, "p2pcash lock_order: FATAL %s\n", v.detail.c_str());
  std::abort();
}

const char* kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kInversion:
      return "lock-order inversion";
    case ViolationKind::kReentrancy:
      return "re-entrant acquisition";
    case ViolationKind::kHierarchy:
      return "hierarchy violation";
  }
  return "?";
}

std::string held_names() {
  std::ostringstream os;
  const auto& held = held_stack();
  for (size_t i = 0; i < held.size(); ++i) {
    if (i) os << " -> ";
    os << held[i]->name;
  }
  return os.str();
}

/// Shared body of on_acquire / on_try_acquire.  `blocking` selects whether
/// inversion/hierarchy violations are reported: a try_lock cannot block,
/// so it cannot deadlock and only contributes edges.
void acquire_impl(const LockNode* node, bool blocking) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  auto& held = held_stack();

  // Re-entrancy: same *instance* already held by this thread.  UB for
  // std::mutex (self-deadlock in practice), so report even for try_lock —
  // std::mutex::try_lock on an already-held mutex is UB too.
  for (const LockNode* h : held) {
    if (h == node) {
      Violation v;
      v.kind = ViolationKind::kReentrancy;
      v.acquiring = node->name;
      v.held = node->name;
      std::ostringstream os;
      os << kind_name(v.kind) << ": thread re-acquired '" << node->name
         << "' it already holds (held: " << held_names() << ")";
      v.detail = os.str();
      report(std::move(v));
      held.push_back(node);
      return;
    }
  }

  if (blocking) {
    // Hierarchy: when both sides declare a non-zero level, acquisitions
    // must be strictly descending.
    for (const LockNode* h : held) {
      if (node->level != 0 && h->level != 0 && node->level >= h->level) {
        Violation v;
        v.kind = ViolationKind::kHierarchy;
        v.acquiring = node->name;
        v.held = h->name;
        std::ostringstream os;
        os << kind_name(v.kind) << ": acquiring '" << node->name
           << "' (level " << node->level << ") while holding '" << h->name
           << "' (level " << h->level
           << "); levels must strictly descend (held: " << held_names()
           << ")";
        v.detail = os.str();
        report(std::move(v));
        break;
      }
    }
  }

  // Record held-before edges and check for cycles.  Violations are built
  // under graph_mu() but reported after releasing it, since report() takes
  // graph_mu() again to read the handler (and a custom handler may want to
  // call back into the tracker).
  std::vector<Violation> deferred;
  {
    std::lock_guard<std::mutex> lock(graph_mu());
    EdgeMap& g = edges();
    for (const LockNode* h : held) {
      const std::string from(h->name);
      const std::string to(node->name);
      if (from == to) continue;  // distinct instances of one role: no edge
      if (g[from].count(to)) continue;
      // Would from -> to close a cycle?  Only if `to` already reaches
      // `from` in the graph.
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (find_path(g, to, from, visited, path)) {
        // Do not record the cycle-closing edge: the graph stays acyclic,
        // so later acquisitions keep reporting against the *first*
        // learned order rather than a poisoned one.
        if (blocking) {
          Violation v;
          v.kind = ViolationKind::kInversion;
          v.acquiring = to;
          v.held = from;
          std::ostringstream os;
          os << kind_name(v.kind) << ": acquiring '" << to
             << "' while holding '" << from
             << "', but the reverse order was already observed (";
          for (size_t i = 0; i < path.size(); ++i) {
            if (i) os << " -> ";
            os << "'" << path[i] << "'";
          }
          os << " -> '" << to << "'); this thread holds: " << held_names();
          v.detail = os.str();
          deferred.push_back(std::move(v));
        }
        continue;
      }
      g[from].insert(to);
    }
  }
  for (Violation& v : deferred) report(std::move(v));

  held.push_back(node);
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_violation_handler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(graph_mu());
  handler_slot() = std::move(handler);
}

void reset() {
  std::lock_guard<std::mutex> lock(graph_mu());
  edges().clear();
  g_violations.store(0, std::memory_order_relaxed);
}

uint64_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

void on_acquire(const LockNode* node) { acquire_impl(node, /*blocking=*/true); }

void on_try_acquire(const LockNode* node) {
  acquire_impl(node, /*blocking=*/false);
}

void on_release(const LockNode* node) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  auto& held = held_stack();
  // Search from the back: locks usually release in LIFO order, but the
  // tracker tolerates any release order (std::unique_lock allows it).
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == node) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the lock was acquired while tracking was disabled.  Ignore.
}

}  // namespace p2pcash::sync::lock_order
