#include "escrow/escrow.h"

namespace p2pcash::escrow {

using ecash::Outcome;
using ecash::Refusal;
using ecash::RefusalReason;

EscrowAuthority EscrowAuthority::create(const group::SchnorrGroup& grp,
                                        bn::Rng& rng) {
  return EscrowAuthority(grp, ElGamalKeyPair::generate(grp, rng));
}

Outcome<std::string> EscrowAuthority::trace(const ecash::Coin& coin) const {
  return trace_tag(coin.bare.info.escrow_tag);
}

Outcome<std::string> EscrowAuthority::trace_tag(
    std::span<const std::uint8_t> tag) const {
  if (tag.empty())
    return Refusal{RefusalReason::kBadProof,
                   "coin carries no escrow tag (fully anonymous)"};
  auto ct = decode_ciphertext(tag);
  if (!ct)
    return Refusal{RefusalReason::kBadProof, "malformed escrow tag"};
  auto plaintext = decrypt(grp_, keys_.x, *ct);
  if (!plaintext)
    return Refusal{RefusalReason::kBadProof,
                   "tag not addressed to this authority (or tampered)"};
  return std::string(plaintext->begin(), plaintext->end());
}

}  // namespace p2pcash::escrow
