#include "escrow/elgamal.h"

#include "crypto/chacha.h"
#include "metrics/counters.h"
#include "crypto/hmac.h"
#include "crypto/secret.h"
#include "wire/codec.h"

namespace p2pcash::escrow {

using bn::BigInt;

namespace {

// Session keys derived from the KEM shared secret. Both halves are wiped
// when the struct leaves scope (SecretBuffer wipes itself).
struct DerivedKeys {
  std::array<std::uint32_t, 8> stream_key;  // ct-secret: stream_key
  crypto::SecretBuffer mac_key;

  DerivedKeys() = default;
  ~DerivedKeys() { crypto::secure_wipe(stream_key); }
  DerivedKeys(const DerivedKeys&) = delete;
  DerivedKeys& operator=(const DerivedKeys&) = delete;
  DerivedKeys(DerivedKeys&&) noexcept = default;
  DerivedKeys& operator=(DerivedKeys&&) noexcept = default;
};

// Derives independent stream/MAC keys from the shared group element.
DerivedKeys derive_keys(const group::SchnorrGroup& grp,
                        const BigInt& shared) {
  auto shared_bytes = shared.to_bytes_be_padded(grp.element_bytes());
  std::vector<std::uint8_t> salt = {'p', '2', 'p', 'c', 'a', 's', 'h'};
  auto prk = crypto::hkdf_extract(salt, shared_bytes);
  crypto::secure_wipe(shared_bytes);  // encodes the KEM shared secret
  std::vector<std::uint8_t> info_stream = {'s', 't', 'r', 'e', 'a', 'm'};
  std::vector<std::uint8_t> info_mac = {'m', 'a', 'c'};
  auto stream = crypto::hkdf_expand(prk, info_stream, 32);
  DerivedKeys keys;
  for (int i = 0; i < 8; ++i) {
    keys.stream_key[i] = static_cast<std::uint32_t>(stream[4 * i]) |
                         (static_cast<std::uint32_t>(stream[4 * i + 1]) << 8) |
                         (static_cast<std::uint32_t>(stream[4 * i + 2]) << 16) |
                         (static_cast<std::uint32_t>(stream[4 * i + 3]) << 24);
  }
  keys.mac_key = crypto::SecretBuffer(crypto::hkdf_expand(prk, info_mac, 32));
  crypto::secure_wipe(stream);
  crypto::secure_wipe(prk);
  return keys;
}

void apply_keystream(const std::array<std::uint32_t, 8>& key,
                     std::span<std::uint8_t> data) {
  std::array<std::uint32_t, 3> nonce{};  // fresh key per message: zero nonce
  std::array<std::uint8_t, 64> block;
  std::uint32_t counter = 0;
  for (std::size_t offset = 0; offset < data.size(); offset += 64) {
    crypto::chacha20_block(key, counter++, nonce, block);
    std::size_t n = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= block[i];
  }
}

std::array<std::uint8_t, 32> compute_mac(std::span<const std::uint8_t> key,
                                         const BigInt& ephemeral,
                                         std::span<const std::uint8_t> body) {
  wire::Writer w;
  w.put_bigint(ephemeral);
  w.put_bytes(body);
  return crypto::hmac_sha256(key, w.bytes());
}

}  // namespace

ElGamalKeyPair ElGamalKeyPair::generate(const group::SchnorrGroup& grp,
                                        bn::Rng& rng) {
  ElGamalKeyPair kp;
  kp.x = grp.random_scalar(rng);
  metrics::ScopedSuspendOpCounting suspend;  // key setup, not protocol cost
  kp.y = grp.exp_g(kp.x);
  return kp;
}

Ciphertext encrypt(const group::SchnorrGroup& grp, const BigInt& public_y,
                   std::span<const std::uint8_t> plaintext, bn::Rng& rng) {
  BigInt r = grp.random_scalar(rng);
  Ciphertext ct;
  ct.ephemeral = grp.exp_g(r);
  auto keys = derive_keys(grp, grp.exp(public_y, r));
  r.wipe();  // the KEM ephemeral exponent decrypts this ciphertext
  ct.body.assign(plaintext.begin(), plaintext.end());
  apply_keystream(keys.stream_key, ct.body);
  ct.mac = compute_mac(keys.mac_key, ct.ephemeral, ct.body);
  return ct;
}

std::optional<std::vector<std::uint8_t>> decrypt(
    const group::SchnorrGroup& grp, const BigInt& secret_x,
    const Ciphertext& ct) {
  if (!grp.is_element(ct.ephemeral)) return std::nullopt;
  auto keys = derive_keys(grp, grp.exp(ct.ephemeral, secret_x));
  auto expected = compute_mac(keys.mac_key, ct.ephemeral, ct.body);
  if (!crypto::constant_time_equal(expected, ct.mac)) return std::nullopt;
  std::vector<std::uint8_t> plaintext = ct.body;
  apply_keystream(keys.stream_key, plaintext);
  return plaintext;
}

std::vector<std::uint8_t> make_escrow_tag(const group::SchnorrGroup& grp,
                                          const bn::BigInt& authority_y,
                                          const std::string& client_identity,
                                          bn::Rng& rng) {
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(client_identity.data()),
      client_identity.size());
  return encode_ciphertext(encrypt(grp, authority_y, bytes, rng));
}

std::vector<std::uint8_t> encode_ciphertext(const Ciphertext& ct) {
  wire::Writer w;
  w.put_bigint(ct.ephemeral);
  w.put_bytes(ct.body);
  w.put_bytes(ct.mac);
  return w.take();
}

std::optional<Ciphertext> decode_ciphertext(
    std::span<const std::uint8_t> bytes) {
  try {
    wire::Reader r(bytes);
    Ciphertext ct;
    ct.ephemeral = r.get_bigint();
    ct.body = r.get_bytes();
    auto mac = r.get_bytes();
    if (mac.size() != ct.mac.size()) return std::nullopt;
    std::copy(mac.begin(), mac.end(), ct.mac.begin());
    r.expect_end();
    return ct;
  } catch (const wire::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace p2pcash::escrow
