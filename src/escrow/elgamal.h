// elgamal.h — hybrid ElGamal encryption over the Schnorr group.
//
// The substrate for the escrow extension: KEM = classic ElGamal in ⟨g⟩
// (ephemeral g^r, shared secret y^r), DEM = ChaCha20 keystream XOR keyed
// through HKDF, with an HMAC tag for integrity.  IND-CPA under DDH in ⟨g⟩;
// the MAC gives integrity against tag tampering (the coin signature
// already covers escrow tags embedded in coins, so this is defense in
// depth for standalone uses).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bn/bigint.h"
#include "bn/rng.h"
#include "group/schnorr_group.h"

namespace p2pcash::escrow {

/// An ElGamal hybrid ciphertext.
struct Ciphertext {
  bn::BigInt ephemeral;               ///< g^r
  std::vector<std::uint8_t> body;     ///< plaintext XOR ChaCha20(key)
  std::array<std::uint8_t, 32> mac{}; ///< HMAC over ephemeral || body

  friend bool operator==(const Ciphertext&, const Ciphertext&) = default;
};

/// Encryption key pair: secret x in Z_q, public y = g^x in ⟨g⟩.
/// The decryption key is zeroized on destruction.
struct ElGamalKeyPair {
  bn::BigInt x;  // ct-secret: x
  bn::BigInt y;

  static ElGamalKeyPair generate(const group::SchnorrGroup& grp,
                                 bn::Rng& rng);

  ElGamalKeyPair() = default;
  ~ElGamalKeyPair() { x.wipe(); }
  ElGamalKeyPair(const ElGamalKeyPair&) = default;
  ElGamalKeyPair& operator=(const ElGamalKeyPair&) = default;
  ElGamalKeyPair(ElGamalKeyPair&&) noexcept = default;
  ElGamalKeyPair& operator=(ElGamalKeyPair&&) noexcept = default;
};

/// Encrypts arbitrary bytes to the holder of `public_y`.
Ciphertext encrypt(const group::SchnorrGroup& grp, const bn::BigInt& public_y,
                   std::span<const std::uint8_t> plaintext, bn::Rng& rng);

/// Decrypts; nullopt if the MAC fails (tampered or wrong key).
std::optional<std::vector<std::uint8_t>> decrypt(
    const group::SchnorrGroup& grp, const bn::BigInt& secret_x,
    const Ciphertext& ct);

/// Builds a coin's escrow tag: Enc_authority(identity), canonically
/// encoded.  Called by the broker during withdrawal of an escrowed coin.
std::vector<std::uint8_t> make_escrow_tag(const group::SchnorrGroup& grp,
                                          const bn::BigInt& authority_y,
                                          const std::string& client_identity,
                                          bn::Rng& rng);

/// Canonical byte encodings (for embedding in CoinInfo).
std::vector<std::uint8_t> encode_ciphertext(const Ciphertext& ct);
std::optional<Ciphertext> decode_ciphertext(
    std::span<const std::uint8_t> bytes);

}  // namespace p2pcash::escrow
