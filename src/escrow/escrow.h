// escrow.h — the identity-escrow extension (paper §3 "Usability and
// Extendibility": the system "should allow for incorporation of escrow
// mechanisms that allow tracing the coin owner", §8 "can easily be
// extended to provide additional functionalities such as escrow service").
//
// Mechanism: at withdrawal the broker — which knows who is paying, via the
// payment rails — encrypts the client's identity under an *escrow
// authority's* key and embeds the ciphertext in the coin's public `info`.
// The blind signature then covers the tag, so it cannot be stripped or
// swapped.  Whoever later holds the coin (a merchant, the broker at
// deposit) sees only an IND-CPA ciphertext; the authority alone can open
// it, e.g. under a court order.
//
// Honest trade-off, documented loudly: because the tag is *public
// per-coin* information created by the broker, escrowed coins are
// linkable by the broker (it can remember tag -> withdrawal).  Escrow
// inherently sacrifices the unconditional untraceability of the base
// scheme; what the split achieves is that *identity disclosure* needs the
// authority, not the broker alone.  Deployments choose per-coin (or
// per-jurisdiction) whether to issue escrowed or bare coins; untagged
// coins keep the paper's full unlinkability (see blindsig_test).

#pragma once

#include <optional>
#include <string>

#include "ecash/coin.h"
#include "ecash/common.h"
#include "escrow/elgamal.h"

namespace p2pcash::escrow {

/// The trusted tracing party (a court, a regulator's key ceremony, …).
class EscrowAuthority {
 public:
  static EscrowAuthority create(const group::SchnorrGroup& grp, bn::Rng& rng);

  /// Published key under which brokers escrow identities.
  const bn::BigInt& public_y() const { return keys_.y; }

  /// Opens a coin's escrow tag. Refuses for untagged coins or tags not
  /// addressed to this authority.
  ecash::Outcome<std::string> trace(const ecash::Coin& coin) const;
  ecash::Outcome<std::string> trace_tag(
      std::span<const std::uint8_t> tag) const;

 private:
  EscrowAuthority(group::SchnorrGroup grp, ElGamalKeyPair keys)
      : grp_(std::move(grp)), keys_(std::move(keys)) {}

  group::SchnorrGroup grp_;
  ElGamalKeyPair keys_;
};

}  // namespace p2pcash::escrow
