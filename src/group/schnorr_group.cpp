#include "group/schnorr_group.h"

#include <stdexcept>

#include "bn/prime.h"
#include "crypto/chacha.h"
#include "crypto/sha256.h"
#include "metrics/counters.h"

namespace p2pcash::group {

using bn::BigInt;

namespace {

// Domain-separated hash of `data` to a big integer of the digest width.
BigInt hash_to_int(std::string_view domain, std::uint32_t counter,
                   const std::vector<std::uint8_t>& data) {
  crypto::Sha256 h;
  h.update(domain);
  std::uint8_t ctr_be[4] = {static_cast<std::uint8_t>(counter >> 24),
                            static_cast<std::uint8_t>(counter >> 16),
                            static_cast<std::uint8_t>(counter >> 8),
                            static_cast<std::uint8_t>(counter)};
  h.update(std::span<const std::uint8_t>(ctr_be, 4));
  h.update(data);
  auto d = h.finalize();
  return BigInt::from_bytes_be(d);
}

}  // namespace

SchnorrGroup SchnorrGroup::make(BigInt p, BigInt q, BigInt g, BigInt g1,
                                BigInt g2) {
  auto data = std::make_shared<Data>();
  data->p = std::move(p);
  data->q = std::move(q);
  data->g = std::move(g);
  data->g1 = std::move(g1);
  data->g2 = std::move(g2);
  data->ctx_p = std::make_unique<bn::MontgomeryCtx>(data->p);
  return SchnorrGroup(std::move(data));
}

SchnorrGroup SchnorrGroup::generate(bn::Rng& rng, std::size_t p_bits,
                                    std::size_t q_bits) {
  auto [p, q] = bn::generate_pq(rng, p_bits, q_bits);
  const BigInt cofactor = (p - BigInt{1}) / q;
  bn::MontgomeryCtx ctx(p);
  // Find g: random h, g = h^((p-1)/q); repeat until g != 1.
  BigInt g;
  do {
    BigInt h = bn::random_below(rng, p - BigInt{3}) + BigInt{2};
    g = ctx.exp(h, cofactor);
  } while (g == BigInt{1});
  // g1, g2: hash into the group so nobody knows log_g(g1) or log_{g1}(g2).
  auto derive = [&](std::string_view label) {
    std::uint32_t counter = 0;
    for (;;) {
      BigInt u = bn::mod(hash_to_int(label, counter++, {}), p);
      BigInt cand = ctx.exp(u, cofactor);
      if (cand != BigInt{1} && !cand.is_zero()) return cand;
    }
  };
  BigInt g1 = derive("p2pcash/generator-g1");
  BigInt g2 = derive("p2pcash/generator-g2");
  return make(std::move(p), std::move(q), std::move(g), std::move(g1),
              std::move(g2));
}

SchnorrGroup SchnorrGroup::from_params(const BigInt& p, const BigInt& q,
                                       const BigInt& g, const BigInt& g1,
                                       const BigInt& g2, bn::Rng& rng) {
  if (!bn::is_probable_prime(p, rng) || !bn::is_probable_prime(q, rng))
    throw std::invalid_argument("SchnorrGroup: p and q must be prime");
  if (bn::mod(p - BigInt{1}, q) != BigInt{0})
    throw std::invalid_argument("SchnorrGroup: q must divide p-1");
  SchnorrGroup grp = make(p, q, g, g1, g2);
  if (!grp.is_generator(g) || !grp.is_generator(g1) || !grp.is_generator(g2))
    throw std::invalid_argument("SchnorrGroup: generators must have order q");
  return grp;
}

BigInt SchnorrGroup::exp(const BigInt& base, const BigInt& e) const {
  metrics::count_exp();
  BigInt reduced = e.is_negative() || e >= data_->q ? bn::mod(e, data_->q) : e;
  return data_->ctx_p->exp(base, reduced);
}

BigInt SchnorrGroup::mul(const BigInt& a, const BigInt& b) const {
  return data_->ctx_p->mul(a, b);
}

BigInt SchnorrGroup::inv(const BigInt& a) const {
  return bn::mod_inverse(a, data_->p);
}

bool SchnorrGroup::is_element(const BigInt& x) const {
  if (x.is_negative() || x.is_zero() || x >= data_->p) return false;
  metrics::count_exp();
  return data_->ctx_p->exp(x, data_->q) == BigInt{1};
}

bool SchnorrGroup::is_generator(const BigInt& x) const {
  return x != BigInt{1} && is_element(x);
}

BigInt SchnorrGroup::hash_to_group(const std::vector<std::uint8_t>& data) const {
  metrics::count_hash();
  const BigInt cofactor = (data_->p - BigInt{1}) / data_->q;
  std::uint32_t counter = 0;
  for (;;) {
    BigInt u = bn::mod(hash_to_int("p2pcash/F", counter++, data), data_->p);
    BigInt cand = data_->ctx_p->exp(u, cofactor);
    if (cand != BigInt{1} && !cand.is_zero()) return cand;
  }
}

BigInt SchnorrGroup::hash_to_zq(const std::vector<std::uint8_t>& data) const {
  metrics::count_hash();
  return bn::mod(hash_to_int("p2pcash/H", 0, data), data_->q);
}

namespace {

const SchnorrGroup* make_static_group(std::string_view seed, std::size_t p_bits,
                                      std::size_t q_bits) {
  crypto::ChaChaRng rng(seed);
  return new SchnorrGroup(SchnorrGroup::generate(rng, p_bits, q_bits));
}

}  // namespace

const SchnorrGroup& SchnorrGroup::production_1024() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/production-1024-160/v1", 1024, 160);
  return *g;
}

const SchnorrGroup& SchnorrGroup::test_512() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/test-512-160/v1", 512, 160);
  return *g;
}

const SchnorrGroup& SchnorrGroup::test_256() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/test-256-160/v1", 256, 160);
  return *g;
}

}  // namespace p2pcash::group
