#include "group/schnorr_group.h"

#include <stdexcept>

#include "bn/prime.h"
#include "crypto/chacha.h"
#include "crypto/sha256.h"
#include "metrics/counters.h"

namespace p2pcash::group {

using bn::BigInt;

namespace {

// Fast-path tuning.  A 4-bit window over 160-bit exponents costs
// ceil(160/4) = 40 table entries per digit slot * 15 digits = 600
// Montgomery multiplications to build and ~77 KB per base at 1024-bit p,
// and serves an exponentiation in ~40 multiplications (vs ~200 for the
// plain ladder).  Recurring non-generator bases (broker keys, z = F(info))
// are promoted to a table only after kPromoteHits sightings so one-shot
// bases never pay the build cost.
constexpr std::size_t kFixedWindowBits = 4;
constexpr std::uint32_t kPromoteHits = 3;
constexpr std::size_t kBaseCacheMax = 64;
constexpr std::size_t kHashCacheMax = 128;

thread_local bool g_fast_exp_disabled = false;

}  // namespace

ScopedDisableFastExp::ScopedDisableFastExp()
    : previous_(g_fast_exp_disabled) {
  g_fast_exp_disabled = true;
}

ScopedDisableFastExp::~ScopedDisableFastExp() {
  g_fast_exp_disabled = previous_;
}

namespace {

// Domain-separated hash of `data` to a big integer of the digest width.
BigInt hash_to_int(std::string_view domain, std::uint32_t counter,
                   const std::vector<std::uint8_t>& data) {
  crypto::Sha256 h;
  h.update(domain);
  std::uint8_t ctr_be[4] = {static_cast<std::uint8_t>(counter >> 24),
                            static_cast<std::uint8_t>(counter >> 16),
                            static_cast<std::uint8_t>(counter >> 8),
                            static_cast<std::uint8_t>(counter)};
  h.update(std::span<const std::uint8_t>(ctr_be, 4));
  h.update(data);
  auto d = h.finalize();
  return BigInt::from_bytes_be(d);
}

}  // namespace

SchnorrGroup SchnorrGroup::make(BigInt p, BigInt q, BigInt g, BigInt g1,
                                BigInt g2) {
  auto data = std::make_shared<Data>();
  data->p = std::move(p);
  data->q = std::move(q);
  data->g = std::move(g);
  data->g1 = std::move(g1);
  data->g2 = std::move(g2);
  data->ctx_p = std::make_unique<bn::MontgomeryCtx>(data->p);
  return SchnorrGroup(std::move(data));
}

SchnorrGroup SchnorrGroup::generate(bn::Rng& rng, std::size_t p_bits,
                                    std::size_t q_bits) {
  auto [p, q] = bn::generate_pq(rng, p_bits, q_bits);
  const BigInt cofactor = (p - BigInt{1}) / q;
  bn::MontgomeryCtx ctx(p);
  // Find g: random h, g = h^((p-1)/q); repeat until g != 1.
  BigInt g;
  do {
    BigInt h = bn::random_below(rng, p - BigInt{3}) + BigInt{2};
    g = ctx.exp(h, cofactor);
  } while (g == BigInt{1});
  // g1, g2: hash into the group so nobody knows log_g(g1) or log_{g1}(g2).
  auto derive = [&](std::string_view label) {
    std::uint32_t counter = 0;
    for (;;) {
      BigInt u = bn::mod(hash_to_int(label, counter++, {}), p);
      BigInt cand = ctx.exp(u, cofactor);
      if (cand != BigInt{1} && !cand.is_zero()) return cand;
    }
  };
  BigInt g1 = derive("p2pcash/generator-g1");
  BigInt g2 = derive("p2pcash/generator-g2");
  return make(std::move(p), std::move(q), std::move(g), std::move(g1),
              std::move(g2));
}

SchnorrGroup SchnorrGroup::from_params(const BigInt& p, const BigInt& q,
                                       const BigInt& g, const BigInt& g1,
                                       const BigInt& g2, bn::Rng& rng) {
  if (!bn::is_probable_prime(p, rng) || !bn::is_probable_prime(q, rng))
    throw std::invalid_argument("SchnorrGroup: p and q must be prime");
  if (bn::mod(p - BigInt{1}, q) != BigInt{0})
    throw std::invalid_argument("SchnorrGroup: q must divide p-1");
  SchnorrGroup grp = make(p, q, g, g1, g2);
  if (!grp.is_generator(g) || !grp.is_generator(g1) || !grp.is_generator(g2))
    throw std::invalid_argument("SchnorrGroup: generators must have order q");
  return grp;
}

BigInt SchnorrGroup::reduce_exponent(const BigInt& e) const {
  return e.is_negative() || e >= data_->q ? bn::mod(e, data_->q) : e;
}

std::shared_ptr<const bn::FixedBaseTable> SchnorrGroup::generator_table(
    int which) const {
  const FastExpState& fast = data_->fast;
  switch (which) {
    case 0: return fast.g_table;
    case 1: return fast.g1_table;
    default: return fast.g2_table;
  }
}

std::shared_ptr<const bn::FixedBaseTable> SchnorrGroup::fixed_table_for(
    const BigInt& base) const {
  if (g_fast_exp_disabled) return nullptr;
  const Data& d = *data_;
  if (base == d.g || base == d.g1 || base == d.g2) {
    std::call_once(d.fast.generators_once, [&d] {
      // Tables cover exponents up to |q| bits: every protocol exponent is
      // reduced mod q first, and the subgroup-membership check uses q
      // itself, which has exactly |q| bits.
      const std::size_t bits = d.q.bit_length();
      auto build = [&](const BigInt& b) {
        return std::make_shared<const bn::FixedBaseTable>(
            d.ctx_p->precompute_base(b, bits, kFixedWindowBits));
      };
      auto g_t = build(d.g);
      auto g1_t = build(d.g1);
      auto g2_t = build(d.g2);
      // Publish under the cache mutex so fixed_base_memory_bytes (which
      // does not pass the once_flag) reads a consistent snapshot; readers
      // below are already synchronized by call_once itself.
      sync::MutexLock lock(d.fast.mu);
      d.fast.g_table = std::move(g_t);
      d.fast.g1_table = std::move(g1_t);
      d.fast.g2_table = std::move(g2_t);
    });
    return generator_table(base == d.g ? 0 : (base == d.g1 ? 1 : 2));
  }

  // Recurring-base cache.  The hit/miss bookkeeping is a short critical
  // section; the expensive BGMW table build (~600 Montgomery muls) happens
  // OUTSIDE the lock so a promotion never stalls concurrent
  // exponentiations of unrelated bases.  Two threads promoting the same
  // base may both build; the first install wins and the duplicate is
  // dropped (identical contents either way).
  {
    sync::MutexLock lock(d.fast.mu);
    auto it = d.fast.cache.find(base);
    if (it == d.fast.cache.end()) {
      if (d.fast.cache.size() >= kBaseCacheMax) {
        // Evict the least-seen base; promoted hot bases have high counts
        // and survive streams of one-shot lookups.
        auto victim = d.fast.cache.begin();
        for (auto i = d.fast.cache.begin(); i != d.fast.cache.end(); ++i) {
          if (i->second.hits < victim->second.hits) victim = i;
        }
        d.fast.cache.erase(victim);
      }
      d.fast.cache.emplace(base, FastExpState::CacheEntry{1, nullptr});
      return nullptr;
    }
    FastExpState::CacheEntry& entry = it->second;
    ++entry.hits;
    if (entry.table) return entry.table;
    if (entry.hits < kPromoteHits) return nullptr;
  }

  auto table = std::make_shared<const bn::FixedBaseTable>(
      data_->ctx_p->precompute_base(base, d.q.bit_length(), kFixedWindowBits));

  sync::MutexLock lock(d.fast.mu);
  auto [it, inserted] =
      d.fast.cache.emplace(base, FastExpState::CacheEntry{kPromoteHits, table});
  if (!inserted && !it->second.table) it->second.table = std::move(table);
  return it->second.table;
}

BigInt SchnorrGroup::exp(const BigInt& base, const BigInt& e) const {
  metrics::count_exp();
  BigInt reduced = reduce_exponent(e);
  if (auto table = fixed_table_for(base))
    return data_->ctx_p->exp_fixed(*table, reduced);
  return data_->ctx_p->exp(base, reduced);
}

BigInt SchnorrGroup::exp2(const BigInt& b1, const BigInt& e1,
                          const BigInt& b2, const BigInt& e2) const {
  const BigInt bases[2] = {b1, b2};
  const BigInt exps[2] = {e1, e2};
  return multi_exp(std::span<const BigInt>(bases, 2),
                   std::span<const BigInt>(exps, 2));
}

BigInt SchnorrGroup::multi_exp(std::span<const BigInt> bases,
                               std::span<const BigInt> exps) const {
  if (bases.size() != exps.size())
    throw std::invalid_argument("SchnorrGroup::multi_exp: size mismatch");
  metrics::count_exp(bases.size());
  if (bases.empty()) return bn::mod(BigInt{1}, data_->p);
  std::vector<BigInt> reduced(exps.size());
  for (std::size_t i = 0; i < exps.size(); ++i)
    reduced[i] = reduce_exponent(exps[i]);

  BigInt acc;
  bool have = false;
  auto fold = [&](BigInt value) {
    acc = have ? data_->ctx_p->mul(acc, value) : std::move(value);
    have = true;
  };
  if (g_fast_exp_disabled) {
    // Baseline path: one plain ladder per base (the pre-fast-path cost).
    for (std::size_t i = 0; i < bases.size(); ++i)
      fold(data_->ctx_p->exp(bases[i], reduced[i]));
    return acc;
  }
  // Bases with tables are served digit-by-digit with no squarings; the
  // rest share one Straus squaring ladder.
  std::vector<BigInt> loose_bases, loose_exps;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (auto table = fixed_table_for(bases[i])) {
      fold(data_->ctx_p->exp_fixed(*table, reduced[i]));
    } else {
      loose_bases.push_back(bases[i]);
      loose_exps.push_back(std::move(reduced[i]));
    }
  }
  if (!loose_bases.empty()) fold(data_->ctx_p->multi_exp(loose_bases, loose_exps));
  return acc;
}

BigInt SchnorrGroup::mul(const BigInt& a, const BigInt& b) const {
  return data_->ctx_p->mul(a, b);
}

BigInt SchnorrGroup::inv(const BigInt& a) const {
  return bn::mod_inverse(a, data_->p);
}

std::size_t SchnorrGroup::fixed_base_memory_bytes() const {
  const Data& d = *data_;
  std::size_t total = 0;
  sync::MutexLock lock(d.fast.mu);
  for (const auto& table : {d.fast.g_table, d.fast.g1_table, d.fast.g2_table})
    if (table) total += table->memory_bytes();
  for (const auto& [base, entry] : d.fast.cache)
    if (entry.table) total += entry.table->memory_bytes();
  return total;
}

bool SchnorrGroup::is_element(const BigInt& x) const {
  if (x.is_negative() || x.is_zero() || x >= data_->p) return false;
  metrics::count_exp();
  if (auto table = fixed_table_for(x))
    return data_->ctx_p->exp_fixed(*table, data_->q) == BigInt{1};
  return data_->ctx_p->exp(x, data_->q) == BigInt{1};
}

bool SchnorrGroup::is_generator(const BigInt& x) const {
  return x != BigInt{1} && is_element(x);
}

BigInt SchnorrGroup::hash_to_group(const std::vector<std::uint8_t>& data) const {
  metrics::count_hash();
  FastExpState& fast = data_->fast;
  std::array<std::uint8_t, 32> memo_key{};
  if (!g_fast_exp_disabled) {
    memo_key = crypto::Sha256::hash(data);
    sync::MutexLock lock(fast.hash_mu);
    auto it = fast.hash_cache.find(memo_key);
    if (it != fast.hash_cache.end()) {
      ++it->second.hits;
      return it->second.value;
    }
  }
  const BigInt cofactor = (data_->p - BigInt{1}) / data_->q;
  std::uint32_t counter = 0;
  BigInt cand;
  for (;;) {
    BigInt u = bn::mod(hash_to_int("p2pcash/F", counter++, data), data_->p);
    cand = data_->ctx_p->exp(u, cofactor);
    if (cand != BigInt{1} && !cand.is_zero()) break;
  }
  if (!g_fast_exp_disabled) {
    sync::MutexLock lock(fast.hash_mu);
    if (fast.hash_cache.size() >= kHashCacheMax) {
      auto victim = fast.hash_cache.begin();
      for (auto i = fast.hash_cache.begin(); i != fast.hash_cache.end(); ++i) {
        if (i->second.hits < victim->second.hits) victim = i;
      }
      fast.hash_cache.erase(victim);
    }
    fast.hash_cache.emplace(memo_key, FastExpState::HashCacheEntry{0, cand});
  }
  return cand;
}

BigInt SchnorrGroup::hash_to_zq(const std::vector<std::uint8_t>& data) const {
  metrics::count_hash();
  return bn::mod(hash_to_int("p2pcash/H", 0, data), data_->q);
}

namespace {

const SchnorrGroup* make_static_group(std::string_view seed, std::size_t p_bits,
                                      std::size_t q_bits) {
  crypto::ChaChaRng rng(seed);
  return new SchnorrGroup(SchnorrGroup::generate(rng, p_bits, q_bits));
}

}  // namespace

const SchnorrGroup& SchnorrGroup::production_1024() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/production-1024-160/v1", 1024, 160);
  return *g;
}

const SchnorrGroup& SchnorrGroup::test_512() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/test-512-160/v1", 512, 160);
  return *g;
}

const SchnorrGroup& SchnorrGroup::test_256() {
  static const SchnorrGroup* g =
      make_static_group("p2pcash/group/test-256-160/v1", 256, 160);
  return *g;
}

}  // namespace p2pcash::group
