// schnorr_group.h — the prime-order subgroup the whole protocol lives in.
//
// Paper §5: p, q large primes with q | p-1, g a generator of the order-q
// subgroup <g> of Z_p^*; g1, g2 two additional random generators of <g>
// whose mutual discrete logs nobody knows (we derive them by hashing into
// the group).  Also provides the paper's random oracles
//   F : {0,1}* -> <g>      (used for z = F(info))
//   H : {0,1}* -> Z_q      (challenge hash in the blind signature)
//   H0: {0,1}* -> Z_q      (payment challenge d = H0(C, I_M, date/time))
// — all built on SHA-256.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bn/bigint.h"
#include "bn/montgomery.h"
#include "bn/multi_exp.h"
#include "bn/rng.h"
#include "sync/annotated.h"

namespace p2pcash::group {

/// Disables the fixed-base/multi-exp fast paths on this thread for its
/// lifetime (exponentiations fall back to the plain Montgomery ladder).
/// Used by tests and benches to show the fast paths change wall-clock
/// only — never results, never Table 1 op counts.
class ScopedDisableFastExp {
 public:
  ScopedDisableFastExp();
  ~ScopedDisableFastExp();
  ScopedDisableFastExp(const ScopedDisableFastExp&) = delete;
  ScopedDisableFastExp& operator=(const ScopedDisableFastExp&) = delete;

 private:
  bool previous_;
};

/// Immutable group parameters plus precomputed Montgomery contexts.
/// Cheap to copy (shared_ptr internals); thread-compatible.
class SchnorrGroup {
 public:
  /// Generates fresh parameters: primes (p, q), generator g of the order-q
  /// subgroup, and independent generators g1, g2 hashed into the group.
  static SchnorrGroup generate(bn::Rng& rng, std::size_t p_bits,
                               std::size_t q_bits);

  /// Reconstructs a group from known parameters, fully validating them:
  /// p, q prime; q | p-1; g, g1, g2 of order exactly q.  Throws
  /// std::invalid_argument on any violation.
  static SchnorrGroup from_params(const bn::BigInt& p, const bn::BigInt& q,
                                  const bn::BigInt& g, const bn::BigInt& g1,
                                  const bn::BigInt& g2, bn::Rng& rng);

  /// The fixed 1024/160-bit production group (paper §5 sizes), generated
  /// once from a public seed and embedded as constants.
  static const SchnorrGroup& production_1024();
  /// 512/160-bit group for integration tests.
  static const SchnorrGroup& test_512();
  /// 256/160-bit group for the hottest unit tests. NOT secure; tests only.
  static const SchnorrGroup& test_256();

  const bn::BigInt& p() const { return data_->p; }
  const bn::BigInt& q() const { return data_->q; }
  const bn::BigInt& g() const { return data_->g; }
  const bn::BigInt& g1() const { return data_->g1; }
  const bn::BigInt& g2() const { return data_->g2; }

  /// base^e mod p. Counts one Exp in the active metrics counter.
  /// Exponentiations of the fixed generators g, g1, g2 are served from
  /// lazily built fixed-base tables; other bases that recur (a broker
  /// public key, z = F(info)) are promoted into a bounded per-group table
  /// cache after a few sightings.  Same result either way.
  bn::BigInt exp(const bn::BigInt& base, const bn::BigInt& e) const;
  /// g^e mod p (same cost accounting as exp).
  bn::BigInt exp_g(const bn::BigInt& e) const { return exp(data_->g, e); }
  /// b1^e1 · b2^e2 mod p in one pass (Straus interleaving, or two
  /// fixed-base lookups when both bases have tables).  Counts TWO Exp:
  /// the fusion is an implementation detail, not a protocol-cost change.
  bn::BigInt exp2(const bn::BigInt& b1, const bn::BigInt& e1,
                  const bn::BigInt& b2, const bn::BigInt& e2) const;
  /// prod_i bases[i]^exps[i] mod p. Counts bases.size() Exp (one per
  /// logical exponentiation, as in Table 1).
  bn::BigInt multi_exp(std::span<const bn::BigInt> bases,
                       std::span<const bn::BigInt> exps) const;
  /// (a * b) mod p.
  bn::BigInt mul(const bn::BigInt& a, const bn::BigInt& b) const;
  /// a^{-1} mod p.
  bn::BigInt inv(const bn::BigInt& a) const;
  /// a mod q (values in exponent arithmetic).
  bn::BigInt reduce_q(const bn::BigInt& a) const { return bn::mod(a, data_->q); }

  /// True iff 0 < x < p and x^q = 1 (x lies in the order-q subgroup).
  /// The membership exponentiation counts as one Exp.
  bool is_element(const bn::BigInt& x) const;
  /// True iff x is in the subgroup and x != 1 (i.e. x generates it).
  bool is_generator(const bn::BigInt& x) const;

  /// F: hash arbitrary bytes onto a subgroup element (never 1).
  /// Counts one Hash (the inner exponentiation is bookkept separately by
  /// the caller-visible exp count only when the paper's Table 1 counts it —
  /// the paper treats F as a hash, so we do not add an Exp here).
  /// Recurring inputs (z = F(info) for a coin under repeated verification)
  /// are served from a bounded memo cache; each call still counts one Hash.
  bn::BigInt hash_to_group(const std::vector<std::uint8_t>& data) const;
  /// H / H0: hash arbitrary bytes to an exponent in Z_q. Counts one Hash.
  bn::BigInt hash_to_zq(const std::vector<std::uint8_t>& data) const;

  /// Serialized element width in bytes (= |p| rounded up).
  std::size_t element_bytes() const { return (data_->p.bit_length() + 7) / 8; }
  /// Serialized exponent width in bytes (= |q| rounded up).
  std::size_t scalar_bytes() const { return (data_->q.bit_length() + 7) / 8; }

  /// Random exponent uniform in [1, q).
  bn::BigInt random_scalar(bn::Rng& rng) const {
    return bn::random_nonzero_below(rng, data_->q);
  }

  /// Bytes currently held by this group's fixed-base tables (generators
  /// plus promoted cache entries).  Diagnostic; see DESIGN.md §6.
  std::size_t fixed_base_memory_bytes() const;

  friend bool operator==(const SchnorrGroup& a, const SchnorrGroup& b) {
    return a.p() == b.p() && a.q() == b.q() && a.g() == b.g() &&
           a.g1() == b.g1() && a.g2() == b.g2();
  }

 private:
  /// Lazily built fixed-base machinery, shared (with the rest of Data)
  /// by every copy of the group.  All members are guarded: the generator
  /// tables by once_flag (writes also take `mu` so memory accounting sees
  /// a consistent snapshot), the recurring-base cache by `mu`, the F-memo
  /// by `hash_mu`.  Both mutexes are leaf-level (level::kGroupCache): any
  /// exponentiation — including ones made under a service lock — may take
  /// them, and no other lock is ever acquired while they are held.
  struct FastExpState {
    std::once_flag generators_once;

    struct CacheEntry {
      std::uint32_t hits = 0;
      std::shared_ptr<const bn::FixedBaseTable> table;  // set once promoted
    };
    sync::Mutex mu{"group.fast_base_cache", sync::level::kGroupCache};
    /// Generator tables: written exactly once under call_once + mu; read
    /// lock-free afterwards (call_once is the publication barrier).
    std::shared_ptr<const bn::FixedBaseTable> g_table P2P_GUARDED_BY(mu),
        g1_table P2P_GUARDED_BY(mu), g2_table P2P_GUARDED_BY(mu);
    std::map<bn::BigInt, CacheEntry> cache P2P_GUARDED_BY(mu);

    // Memo for F = hash_to_group: its cofactor exponentiation uses an
    // |p|-|q|-bit exponent (~5x the cost of a protocol exp) and the same
    // info bytes recur on every verification of the same coin, so z =
    // F(info) is cached, keyed by the SHA-256 of the input (fixed-size
    // keys, bounded entries).  Pure memoization: results and Hash counts
    // are unchanged.
    struct HashCacheEntry {
      std::uint32_t hits = 0;
      bn::BigInt value;
    };
    sync::Mutex hash_mu{"group.hash_cache", sync::level::kGroupCache};
    std::map<std::array<std::uint8_t, 32>, HashCacheEntry> hash_cache
        P2P_GUARDED_BY(hash_mu);
  };

  struct Data {
    bn::BigInt p, q, g, g1, g2;
    std::unique_ptr<bn::MontgomeryCtx> ctx_p;
    mutable FastExpState fast;
  };
  explicit SchnorrGroup(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}
  static SchnorrGroup make(bn::BigInt p, bn::BigInt q, bn::BigInt g,
                           bn::BigInt g1, bn::BigInt g2);

  /// Table for `base` if it is a generator or a promoted recurring base;
  /// nullptr otherwise (or when fast paths are disabled on this thread).
  std::shared_ptr<const bn::FixedBaseTable> fixed_table_for(
      const bn::BigInt& base) const;
  /// Lock-free generator-table read (0 = g, 1 = g1, 2 = g2).  Only called
  /// after std::call_once published the tables; the once_flag is the
  /// synchronization, which the analysis cannot see — hence the opt-out.
  std::shared_ptr<const bn::FixedBaseTable> generator_table(int which) const
      P2P_NO_THREAD_SAFETY_ANALYSIS;
  bn::BigInt reduce_exponent(const bn::BigInt& e) const;

  std::shared_ptr<const Data> data_;
};

}  // namespace p2pcash::group
