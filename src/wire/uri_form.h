// uri_form.h — the paper's REST/URL-encoded message representation.
//
// The prototype in §7 transfers all protocol state URL-encoded ("all state
// is encoded as universal resource identifiers"), which is what Table 2's
// byte counts measure.  UriForm renders an ordered key/value form as
// "k1=v1&k2=v2" with percent-escaping; binary values are carried base64.
// The binary codec (codec.h) is the compact alternative the paper suggests
// ("compression and/or base64 data encoding can be used").

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bn/bigint.h"

namespace p2pcash::wire {

/// Ordered key/value form with URI rendering.
class UriForm {
 public:
  UriForm& add(std::string key, std::string value);
  UriForm& add_bytes(std::string key, std::span<const std::uint8_t> bytes);
  UriForm& add_bigint(std::string key, const bn::BigInt& v);
  UriForm& add_u64(std::string key, std::uint64_t v);

  /// "k1=v1&k2=v2" with both sides percent-escaped.
  std::string render() const;
  /// Parses a rendered form. Throws wire::DecodeError on malformed input.
  static UriForm parse(std::string_view s);

  /// First value for `key`, if present.
  std::optional<std::string> get(std::string_view key) const;
  std::optional<std::vector<std::uint8_t>> get_bytes(std::string_view key) const;
  std::optional<bn::BigInt> get_bigint(std::string_view key) const;
  std::optional<std::uint64_t> get_u64(std::string_view key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  /// Rendered size in bytes — the quantity Table 2 reports.
  std::size_t rendered_size() const { return render().size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace p2pcash::wire
