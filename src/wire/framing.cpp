#include "wire/framing.h"

#include <cstring>

namespace p2pcash::wire {

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame) {
  if (payload.size() > max_frame)
    throw DecodeError("append_frame: payload exceeds frame limit");
  const auto n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(n >> 24));
  out.push_back(static_cast<std::uint8_t>(n >> 16));
  out.push_back(static_cast<std::uint8_t>(n >> 8));
  out.push_back(static_cast<std::uint8_t>(n));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) throw DecodeError("FrameDecoder: poisoned stream");
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  parse();
}

void FrameDecoder::parse() {
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    const std::uint32_t n = (static_cast<std::uint32_t>(buffer_[pos]) << 24) |
                            (static_cast<std::uint32_t>(buffer_[pos + 1]) << 16) |
                            (static_cast<std::uint32_t>(buffer_[pos + 2]) << 8) |
                            static_cast<std::uint32_t>(buffer_[pos + 3]);
    if (n > max_frame_) {
      // Reject on the header alone: buffering even part of an absurd
      // payload hands the peer control of our memory.  Drop everything —
      // the stream has no recoverable frame boundary after this.
      poisoned_ = true;
      buffer_.clear();
      throw DecodeError("FrameDecoder: frame length exceeds limit");
    }
    if (buffer_.size() - pos - 4 < n) break;  // payload incomplete
    ready_.emplace_back(buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                        buffer_.begin() +
                            static_cast<std::ptrdiff_t>(pos + 4 + n));
    pos += 4 + n;
  }
  if (pos > 0) buffer_.erase(buffer_.begin(),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  auto out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

}  // namespace p2pcash::wire
