#include "wire/framing.h"

#include <cstring>
#include <stdexcept>

namespace p2pcash::wire {

namespace {

void check_max_frame(std::size_t max_frame) {
  // The top bit of the length word is the trace-envelope flag; a limit at
  // or above it would make flagged lengths ambiguous.  This is a caller
  // configuration bug, not a peer protocol violation, hence not
  // DecodeError.
  if (max_frame >= kTraceFlagBit)
    throw std::invalid_argument("framing: max_frame must be < 2^31");
}

void append_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u64be(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint64_t read_u64be(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame) {
  append_frame(out, payload, TraceEnvelope{}, max_frame);
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  const TraceEnvelope& trace, std::size_t max_frame) {
  check_max_frame(max_frame);
  if (payload.size() > max_frame)
    throw DecodeError("append_frame: payload exceeds frame limit");
  auto n = static_cast<std::uint32_t>(payload.size());
  if (trace.valid()) {
    append_u32be(out, n | kTraceFlagBit);
    append_u64be(out, trace.trace);
    append_u64be(out, trace.span);
  } else {
    append_u32be(out, n);
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameDecoder::FrameDecoder(std::size_t max_frame) : max_frame_(max_frame) {
  check_max_frame(max_frame);
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) throw DecodeError("FrameDecoder: poisoned stream");
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  parse();
}

void FrameDecoder::parse() {
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    const std::uint32_t raw =
        (static_cast<std::uint32_t>(buffer_[pos]) << 24) |
        (static_cast<std::uint32_t>(buffer_[pos + 1]) << 16) |
        (static_cast<std::uint32_t>(buffer_[pos + 2]) << 8) |
        static_cast<std::uint32_t>(buffer_[pos + 3]);
    const bool traced = (raw & kTraceFlagBit) != 0;
    const std::uint32_t n = raw & ~kTraceFlagBit;
    const std::size_t header = 4 + (traced ? kTraceEnvelopeBytes : 0);
    if (n > max_frame_) {
      // Reject on the header alone: buffering even part of an absurd
      // payload hands the peer control of our memory.  Drop everything —
      // the stream has no recoverable frame boundary after this.
      poisoned_ = true;
      buffer_.clear();
      throw DecodeError("FrameDecoder: frame length exceeds limit");
    }
    if (buffer_.size() - pos < header + n) break;  // envelope/payload short
    Frame frame;
    if (traced) {
      frame.trace.trace = read_u64be(buffer_.data() + pos + 4);
      frame.trace.span = read_u64be(buffer_.data() + pos + 12);
    }
    frame.payload.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + header),
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + header + n));
    ready_.push_back(std::move(frame));
    pos += header + n;
  }
  if (pos > 0) buffer_.erase(buffer_.begin(),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  auto out = std::move(ready_.front().payload);
  ready_.pop_front();
  return out;
}

std::optional<Frame> FrameDecoder::next_frame() {
  if (ready_.empty()) return std::nullopt;
  auto out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

}  // namespace p2pcash::wire
