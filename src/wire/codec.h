// codec.h — canonical binary serialization.
//
// Every protocol structure has exactly one canonical byte encoding, used
// both on the (simulated) wire and as the preimage of every hash and
// signature — so "sign the payment transcript" is unambiguous and
// non-malleable.  Format: length-prefixed fields, big-endian integers.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bn/bigint.h"

namespace p2pcash::wire {

/// Thrown by Reader on malformed or truncated input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fields to a byte buffer.
class Writer {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Length-prefixed raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes);
  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s);
  /// Length-prefixed magnitude bytes; non-negative values only (protocol
  /// scalars/elements are all in [0, p)). Throws std::domain_error otherwise.
  void put_bigint(const bn::BigInt& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Consumes fields from a byte buffer; throws DecodeError on any underflow.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  std::vector<std::uint8_t> get_bytes();
  std::string get_string();
  bn::BigInt get_bigint();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws DecodeError unless the input was fully consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Anything with `void encode(Writer&) const`.
template <typename T>
concept Encodable = requires(const T& t, Writer& w) { t.encode(w); };

/// Canonical encoding of a single encodable value.
template <Encodable T>
std::vector<std::uint8_t> encode(const T& value) {
  Writer w;
  value.encode(w);
  return w.take();
}

/// Decodes a whole buffer into T (requires static T::decode(Reader&)).
template <typename T>
T decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  T value = T::decode(r);
  r.expect_end();
  return value;
}

}  // namespace p2pcash::wire
