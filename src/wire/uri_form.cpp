#include "wire/uri_form.h"

#include <charconv>

#include "crypto/encoding.h"
#include "wire/codec.h"

namespace p2pcash::wire {

UriForm& UriForm::add(std::string key, std::string value) {
  entries_.emplace_back(std::move(key), std::move(value));
  return *this;
}

UriForm& UriForm::add_bytes(std::string key,
                            std::span<const std::uint8_t> bytes) {
  return add(std::move(key), crypto::to_base64(bytes));
}

UriForm& UriForm::add_bigint(std::string key, const bn::BigInt& v) {
  return add(std::move(key), v.to_hex());
}

UriForm& UriForm::add_u64(std::string key, std::uint64_t v) {
  return add(std::move(key), std::to_string(v));
}

std::string UriForm::render() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) out.push_back('&');
    out += crypto::uri_escape(entries_[i].first);
    out.push_back('=');
    out += crypto::uri_escape(entries_[i].second);
  }
  return out;
}

UriForm UriForm::parse(std::string_view s) {
  UriForm form;
  if (s.empty()) return form;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t amp = s.find('&', start);
    std::string_view pair =
        s.substr(start, amp == std::string_view::npos ? amp : amp - start);
    std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos)
      throw DecodeError("UriForm::parse: missing '='");
    try {
      form.entries_.emplace_back(crypto::uri_unescape(pair.substr(0, eq)),
                                 crypto::uri_unescape(pair.substr(eq + 1)));
    } catch (const std::invalid_argument& e) {
      throw DecodeError(std::string("UriForm::parse: ") + e.what());
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return form;
}

std::optional<std::string> UriForm::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> UriForm::get_bytes(
    std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  try {
    return crypto::from_base64(*v);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<bn::BigInt> UriForm::get_bigint(std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  try {
    return bn::BigInt::from_hex(*v);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> UriForm::get_u64(std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
  return out;
}

}  // namespace p2pcash::wire
