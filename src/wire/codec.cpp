#include "wire/codec.h"

namespace p2pcash::wire {

void Writer::put_u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void Writer::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Writer::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::put_bigint(const bn::BigInt& v) {
  if (v.is_negative())
    throw std::domain_error("Writer::put_bigint: negative value");
  put_bytes(v.to_bytes_be());
}

void Reader::need(std::size_t n) const {
  // Compare against the remaining bytes rather than computing pos_ + n:
  // an attacker-supplied length near SIZE_MAX would wrap the sum and slip
  // past the bound.  pos_ <= data_.size() always holds, so the subtraction
  // cannot underflow.
  if (n > data_.size() - pos_) throw DecodeError("Reader: truncated input");
}

std::uint8_t Reader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::get_u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::get_u64() {
  std::uint64_t hi = get_u32();
  std::uint64_t lo = get_u32();
  return (hi << 32) | lo;
}

std::vector<std::uint8_t> Reader::get_bytes() {
  std::uint32_t n = get_u32();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::get_string() {
  std::uint32_t n = get_u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

bn::BigInt Reader::get_bigint() {
  auto bytes = get_bytes();
  return bn::BigInt::from_bytes_be(bytes);
}

void Reader::expect_end() const {
  if (!at_end()) throw DecodeError("Reader: trailing bytes");
}

}  // namespace p2pcash::wire
