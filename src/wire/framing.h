// framing.h — length-prefixed stream framing for byte-stream transports.
//
// A TCP connection delivers an arbitrary re-chunking of the sent bytes:
// one write() can arrive as many reads, and many writes as one read.  The
// frame layer restores message boundaries: every frame is a 4-byte
// big-endian payload length followed by exactly that many payload bytes.
//
// FrameDecoder is *resumable*: feed() accepts any fragmentation of the
// stream — one byte at a time, a length prefix split across reads, many
// frames in one read — and next() yields complete payloads in order.  A
// length prefix above the configured maximum is a protocol violation (a
// corrupt or hostile peer), reported as DecodeError; the connection that
// produced it must be torn down, since the stream can never re-synchronize.
//
// Trace envelope: a frame may carry an optional 16-byte trace context
// (trace id + parent span id, both big-endian u64) between the length
// prefix and the payload.  Presence is flagged by the top bit of the
// length word (kTraceFlagBit); the length field still counts PAYLOAD
// bytes only.  Untraced frames are byte-identical to the pre-envelope
// format — the flag bit was always zero because max_frame is far below
// 2^31 — so mixed-version peers interoperate on untraced traffic and
// golden byte streams stay stable.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "wire/codec.h"

namespace p2pcash::wire {

/// Hard ceiling on a frame payload.  Protocol messages (coins, transcripts,
/// endorsements) are a few KB; anything near this limit is garbage or an
/// attack on the receiver's allocator.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Length-word bit flagging a 16-byte trace envelope after the prefix.
/// Any max_frame must stay strictly below this so the bit is unambiguous;
/// append_frame and FrameDecoder enforce that invariant.
inline constexpr std::uint32_t kTraceFlagBit = 0x8000'0000u;

/// Wire size of the trace envelope (two big-endian u64s).
inline constexpr std::size_t kTraceEnvelopeBytes = 16;

/// The trace context a frame can carry: which trace the message belongs
/// to and which span caused the send.  trace == 0 means "untraced" and
/// encodes to zero wire bytes (mirrors obs::TraceContext, which wire/
/// must not depend on).
struct TraceEnvelope {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;

  bool valid() const { return trace != 0; }
  friend bool operator==(const TraceEnvelope&, const TraceEnvelope&) = default;
};

/// One decoded frame: the payload plus its trace envelope (invalid — all
/// zeros — for untraced frames).
struct Frame {
  std::vector<std::uint8_t> payload;
  TraceEnvelope trace;
};

/// Appends one frame (length prefix + payload) to `out`.  Throws
/// DecodeError if the payload exceeds `max_frame` — the peer could never
/// parse it, so refusing at the sender keeps the failure local.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame = kDefaultMaxFrameBytes);

/// Same, carrying `trace` in the wire envelope.  An invalid (zero)
/// envelope emits a plain frame, byte-identical to the overload above —
/// callers never need to branch on "is this message traced".
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  const TraceEnvelope& trace,
                  std::size_t max_frame = kDefaultMaxFrameBytes);

/// Incremental frame parser over an arbitrarily re-chunked byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrameBytes);

  /// Appends raw stream bytes.  Throws DecodeError as soon as a frame
  /// header announces a payload above the maximum — before buffering any
  /// of it — after which the decoder is poisoned and every call throws.
  void feed(std::span<const std::uint8_t> data);

  /// Returns the next complete frame payload, or nullopt if the buffered
  /// bytes end mid-header or mid-payload (feed more and retry).  Drops
  /// the trace envelope; use next_frame() to keep it.
  std::optional<std::vector<std::uint8_t>> next();

  /// Returns the next complete frame (payload + trace envelope), or
  /// nullopt if the buffered bytes end mid-frame.
  std::optional<Frame> next_frame();

  /// Bytes buffered but not yet returned (partial header + payload).
  std::size_t buffered() const { return buffer_.size(); }
  /// Complete frames parsed and waiting for next().
  std::size_t ready() const { return ready_.size(); }
  std::size_t max_frame() const { return max_frame_; }

 private:
  void parse() /* throws DecodeError */;

  std::size_t max_frame_;
  bool poisoned_ = false;
  std::vector<std::uint8_t> buffer_;  ///< partial header/payload bytes
  std::deque<Frame> ready_;
};

}  // namespace p2pcash::wire
