// framing.h — length-prefixed stream framing for byte-stream transports.
//
// A TCP connection delivers an arbitrary re-chunking of the sent bytes:
// one write() can arrive as many reads, and many writes as one read.  The
// frame layer restores message boundaries: every frame is a 4-byte
// big-endian payload length followed by exactly that many payload bytes.
//
// FrameDecoder is *resumable*: feed() accepts any fragmentation of the
// stream — one byte at a time, a length prefix split across reads, many
// frames in one read — and next() yields complete payloads in order.  A
// length prefix above the configured maximum is a protocol violation (a
// corrupt or hostile peer), reported as DecodeError; the connection that
// produced it must be torn down, since the stream can never re-synchronize.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "wire/codec.h"

namespace p2pcash::wire {

/// Hard ceiling on a frame payload.  Protocol messages (coins, transcripts,
/// endorsements) are a few KB; anything near this limit is garbage or an
/// attack on the receiver's allocator.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Appends one frame (length prefix + payload) to `out`.  Throws
/// DecodeError if the payload exceeds `max_frame` — the peer could never
/// parse it, so refusing at the sender keeps the failure local.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame = kDefaultMaxFrameBytes);

/// Incremental frame parser over an arbitrarily re-chunked byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Appends raw stream bytes.  Throws DecodeError as soon as a frame
  /// header announces a payload above the maximum — before buffering any
  /// of it — after which the decoder is poisoned and every call throws.
  void feed(std::span<const std::uint8_t> data);

  /// Returns the next complete frame payload, or nullopt if the buffered
  /// bytes end mid-header or mid-payload (feed more and retry).
  std::optional<std::vector<std::uint8_t>> next();

  /// Bytes buffered but not yet returned (partial header + payload).
  std::size_t buffered() const { return buffer_.size(); }
  /// Complete frames parsed and waiting for next().
  std::size_t ready() const { return ready_.size(); }
  std::size_t max_frame() const { return max_frame_; }

 private:
  void parse() /* throws DecodeError */;

  std::size_t max_frame_;
  bool poisoned_ = false;
  std::vector<std::uint8_t> buffer_;  ///< partial header/payload bytes
  std::deque<std::vector<std::uint8_t>> ready_;
};

}  // namespace p2pcash::wire
