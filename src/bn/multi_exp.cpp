#include "bn/multi_exp.h"

#include <algorithm>
#include <stdexcept>

namespace p2pcash::bn {

std::size_t FixedBaseTable::memory_bytes() const {
  std::size_t limbs = 0;
  for (const auto& entry : entries_) limbs += entry.size();
  return limbs * sizeof(BigInt::Limb);
}

FixedBaseTable MontgomeryCtx::precompute_base(const BigInt& base,
                                              std::size_t max_exp_bits,
                                              std::size_t window_bits) const {
  if (window_bits == 0 || window_bits > 8)
    throw std::domain_error("precompute_base: window must be 1..8 bits");
  FixedBaseTable t;
  t.base_ = mod(base, modulus_);
  t.window_bits_ = window_bits;
  t.windows_ = std::max<std::size_t>(
      1, (max_exp_bits + window_bits - 1) / window_bits);
  const std::size_t digits = (std::size_t{1} << window_bits) - 1;
  t.entries_.reserve(t.windows_ * digits);
  // cur = base^(2^(w*i)) in Montgomery form as i advances over digit slots.
  std::vector<Limb> cur = to_mont(base);
  for (std::size_t i = 0; i < t.windows_; ++i) {
    t.entries_.push_back(cur);  // digit value 1
    for (std::size_t d = 2; d <= digits; ++d)
      t.entries_.push_back(mont_mul(t.entries_.back(), cur));
    // entries_.back() = cur^(2^w - 1), so one more multiply hops to the
    // next digit slot without any squarings.
    if (i + 1 < t.windows_) cur = mont_mul(t.entries_.back(), cur);
  }
  return t;
}

BigInt MontgomeryCtx::exp_fixed(const FixedBaseTable& table,
                                const BigInt& exponent) const {
  if (exponent.is_negative())
    throw std::domain_error("MontgomeryCtx::exp_fixed: negative exponent");
  if (exponent.is_zero()) return mod(BigInt{1}, modulus_);
  if (!table.covers(exponent.bit_length()))
    return exp(table.base_, exponent);
  const std::size_t w = table.window_bits_;
  const std::size_t digits = (std::size_t{1} << w) - 1;
  const std::size_t nwin = (exponent.bit_length() + w - 1) / w;
  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t i = 0; i < nwin; ++i) {
    unsigned d = 0;
    for (std::size_t k = w; k-- > 0;)
      d = (d << 1) | (exponent.bit(i * w + k) ? 1u : 0u);
    if (d == 0) continue;
    const std::vector<Limb>& entry = table.entries_[i * digits + (d - 1)];
    if (started) {
      acc = mont_mul(acc, entry);
    } else {
      acc = entry;
      started = true;
    }
  }
  return from_mont(std::move(acc));  // started: exponent != 0 has a digit
}

BigInt MontgomeryCtx::multi_exp(std::span<const BigInt> bases,
                                std::span<const BigInt> exponents) const {
  if (bases.size() != exponents.size())
    throw std::invalid_argument("MontgomeryCtx::multi_exp: size mismatch");
  if (bases.empty()) return mod(BigInt{1}, modulus_);
  constexpr std::size_t kW = 4;
  constexpr std::size_t kDigits = (std::size_t{1} << kW) - 1;
  std::size_t max_bits = 0;
  for (const BigInt& e : exponents) {
    if (e.is_negative())
      throw std::domain_error("MontgomeryCtx::multi_exp: negative exponent");
    max_bits = std::max(max_bits, e.bit_length());
  }
  if (max_bits == 0) return mod(BigInt{1}, modulus_);
  // Per-base odd+even power tables (1..15), then one shared squaring
  // ladder: k bases cost 160 squarings total instead of 160 each.
  std::vector<std::vector<std::vector<Limb>>> tables(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    std::vector<Limb> m = to_mont(bases[i]);
    tables[i].resize(kDigits);
    tables[i][0] = std::move(m);
    for (std::size_t d = 1; d < kDigits; ++d)
      tables[i][d] = mont_mul(tables[i][d - 1], tables[i][0]);
  }
  std::vector<Limb> acc;
  bool started = false;
  const std::size_t nwin = (max_bits + kW - 1) / kW;
  for (std::size_t win = nwin; win-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < kW; ++s) acc = mont_mul(acc, acc);
    }
    for (std::size_t i = 0; i < bases.size(); ++i) {
      unsigned d = 0;
      for (std::size_t k = kW; k-- > 0;)
        d = (d << 1) | (exponents[i].bit(win * kW + k) ? 1u : 0u);
      if (d == 0) continue;
      if (started) {
        acc = mont_mul(acc, tables[i][d - 1]);
      } else {
        acc = tables[i][d - 1];
        started = true;
      }
    }
  }
  return from_mont(std::move(acc));  // started: max_bits > 0 has a digit
}

}  // namespace p2pcash::bn
