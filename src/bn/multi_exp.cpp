#include "bn/multi_exp.h"

#include <algorithm>
#include <stdexcept>

namespace p2pcash::bn {

namespace {

// Straus vs Pippenger crossover.  Straus pays a 15-multiplication digit
// table per base up front and ~n multiplications per 4-bit window;
// Pippenger pays no per-base tables but (n + 2^(c+1)) multiplications per
// c-bit window.  With 160-bit exponents the bucket method starts winning
// around n ≈ 128 (c = 5) and widens its lead as c grows with n; below the
// threshold the shared-ladder Straus path is strictly cheaper.
constexpr std::size_t kPippengerMinBases = 128;

// Bucket window width for a given batch size: wider windows amortize the
// 2^(c+1) bucket-fold cost over more bases.
std::size_t pippenger_window(std::size_t n_bases) {
  if (n_bases >= 1024) return 7;
  if (n_bases >= 256) return 6;
  return 5;
}

}  // namespace

std::size_t FixedBaseTable::memory_bytes() const {
  std::size_t limbs = 0;
  for (const auto& entry : entries_) limbs += entry.size();
  return limbs * sizeof(BigInt::Limb);
}

FixedBaseTable MontgomeryCtx::precompute_base(const BigInt& base,
                                              std::size_t max_exp_bits,
                                              std::size_t window_bits) const {
  if (window_bits == 0 || window_bits > 8)
    throw std::domain_error("precompute_base: window must be 1..8 bits");
  FixedBaseTable t;
  t.base_ = mod(base, modulus_);
  t.window_bits_ = window_bits;
  t.windows_ = std::max<std::size_t>(
      1, (max_exp_bits + window_bits - 1) / window_bits);
  const std::size_t digits = (std::size_t{1} << window_bits) - 1;
  t.entries_.reserve(t.windows_ * digits);
  // cur = base^(2^(w*i)) in Montgomery form as i advances over digit slots.
  std::vector<Limb> cur = to_mont(base);
  for (std::size_t i = 0; i < t.windows_; ++i) {
    t.entries_.push_back(cur);  // digit value 1
    for (std::size_t d = 2; d <= digits; ++d)
      t.entries_.push_back(mont_mul(t.entries_.back(), cur));
    // entries_.back() = cur^(2^w - 1), so one more multiply hops to the
    // next digit slot without any squarings.
    if (i + 1 < t.windows_) cur = mont_mul(t.entries_.back(), cur);
  }
  return t;
}

BigInt MontgomeryCtx::exp_fixed(const FixedBaseTable& table,
                                const BigInt& exponent) const {
  if (exponent.is_negative())
    throw std::domain_error("MontgomeryCtx::exp_fixed: negative exponent");
  if (exponent.is_zero()) return mod(BigInt{1}, modulus_);
  if (!table.covers(exponent.bit_length()))
    return exp(table.base_, exponent);
  const std::size_t w = table.window_bits_;
  const std::size_t digits = (std::size_t{1} << w) - 1;
  const std::size_t nwin = (exponent.bit_length() + w - 1) / w;
  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t i = 0; i < nwin; ++i) {
    unsigned d = 0;
    for (std::size_t k = w; k-- > 0;)
      d = (d << 1) | (exponent.bit(i * w + k) ? 1u : 0u);
    if (d == 0) continue;
    const std::vector<Limb>& entry = table.entries_[i * digits + (d - 1)];
    if (started) {
      acc = mont_mul(acc, entry);
    } else {
      acc = entry;
      started = true;
    }
  }
  return from_mont(std::move(acc));  // started: exponent != 0 has a digit
}

BigInt MontgomeryCtx::multi_exp(std::span<const BigInt> bases,
                                std::span<const BigInt> exponents) const {
  if (bases.size() != exponents.size())
    throw std::invalid_argument("MontgomeryCtx::multi_exp: size mismatch");
  if (bases.empty()) return mod(BigInt{1}, modulus_);
  constexpr std::size_t kW = 4;
  constexpr std::size_t kDigits = (std::size_t{1} << kW) - 1;
  std::size_t max_bits = 0;
  for (const BigInt& e : exponents) {
    if (e.is_negative())
      throw std::domain_error("MontgomeryCtx::multi_exp: negative exponent");
    max_bits = std::max(max_bits, e.bit_length());
  }
  if (max_bits == 0) return mod(BigInt{1}, modulus_);
  if (bases.size() >= kPippengerMinBases)
    return multi_exp_pippenger(bases, exponents, max_bits);
  // Per-base odd+even power tables (1..15), then one shared squaring
  // ladder: k bases cost 160 squarings total instead of 160 each.
  std::vector<std::vector<std::vector<Limb>>> tables(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    std::vector<Limb> m = to_mont(bases[i]);
    tables[i].resize(kDigits);
    tables[i][0] = std::move(m);
    for (std::size_t d = 1; d < kDigits; ++d)
      tables[i][d] = mont_mul(tables[i][d - 1], tables[i][0]);
  }
  std::vector<Limb> acc;
  bool started = false;
  const std::size_t nwin = (max_bits + kW - 1) / kW;
  for (std::size_t win = nwin; win-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < kW; ++s) acc = mont_mul(acc, acc);
    }
    for (std::size_t i = 0; i < bases.size(); ++i) {
      unsigned d = 0;
      for (std::size_t k = kW; k-- > 0;)
        d = (d << 1) | (exponents[i].bit(win * kW + k) ? 1u : 0u);
      if (d == 0) continue;
      if (started) {
        acc = mont_mul(acc, tables[i][d - 1]);
      } else {
        acc = tables[i][d - 1];
        started = true;
      }
    }
  }
  return from_mont(std::move(acc));  // started: max_bits > 0 has a digit
}

BigInt MontgomeryCtx::multi_exp_pippenger(std::span<const BigInt> bases,
                                          std::span<const BigInt> exponents,
                                          std::size_t max_bits) const {
  // Pippenger's bucket method: per c-bit window, multiply each base into
  // the bucket of its digit, then fold the buckets with one suffix-product
  // sweep (bucket[d]^d for all d in 2·2^c multiplications, no per-digit
  // exponentiations).  All windows share a single squaring ladder, exactly
  // like the Straus path, so results are identical — only the per-window
  // inner loop differs.
  const std::size_t c = pippenger_window(bases.size());
  const std::size_t nbuckets = (std::size_t{1} << c) - 1;
  std::vector<std::vector<Limb>> mont(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) mont[i] = to_mont(bases[i]);
  std::vector<std::vector<Limb>> bucket(nbuckets);
  std::vector<char> occupied(nbuckets, 0);
  const std::size_t nwin = (max_bits + c - 1) / c;
  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t win = nwin; win-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < c; ++s) acc = mont_mul(acc, acc);
    }
    std::fill(occupied.begin(), occupied.end(), 0);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      unsigned d = 0;
      for (std::size_t k = c; k-- > 0;)
        d = (d << 1) | (exponents[i].bit(win * c + k) ? 1u : 0u);
      if (d == 0) continue;
      if (occupied[d - 1]) {
        bucket[d - 1] = mont_mul(bucket[d - 1], mont[i]);
      } else {
        bucket[d - 1] = mont[i];
        occupied[d - 1] = 1;
      }
    }
    // Suffix sweep: running = prod of buckets with digit >= d+1, so
    // multiplying it into the window sum once per step contributes each
    // bucket raised to exactly its digit value.
    std::vector<Limb> running, wsum;
    bool have_running = false, have_sum = false;
    for (std::size_t d = nbuckets; d-- > 0;) {
      if (occupied[d]) {
        running = have_running ? mont_mul(running, bucket[d]) : bucket[d];
        have_running = true;
      }
      if (have_running) {
        wsum = have_sum ? mont_mul(wsum, running) : running;
        have_sum = true;
      }
    }
    if (have_sum) {
      acc = started ? mont_mul(acc, wsum) : std::move(wsum);
      started = true;
    }
  }
  if (!started) return mod(BigInt{1}, modulus_);  // all-zero digits
  return from_mont(std::move(acc));
}

}  // namespace p2pcash::bn
