// rng.h — randomness source abstraction used by the arithmetic layer.
//
// All randomness in the library flows through this interface so tests and
// benchmarks can inject a deterministic, seeded generator (crypto::ChaChaRng)
// and every run is reproducible.  Defined here, at the lowest layer, so that
// prime generation does not need to depend on the crypto module.

#pragma once

#include <cstdint>
#include <span>

#include "bn/bigint.h"
#include "crypto/secret.h"  // header-only; no link dependency on crypto

namespace p2pcash::bn {

/// Source of random bytes. Implementations must fill the whole span.
class Rng {
 public:
  virtual ~Rng() = default;
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: one uniform 64-bit value.
  std::uint64_t next_u64() {
    std::uint8_t buf[8];
    fill(buf);
    std::uint64_t v = 0;
    for (auto b : buf) v = (v << 8) | b;
    crypto::secure_wipe(buf);  // raw RNG output may seed secret scalars
    return v;
  }
};

/// Uniform value in [0, 2^bits).
BigInt random_bits(Rng& rng, std::size_t bits);

/// Uniform value in [0, bound) via rejection sampling; bound must be > 0.
BigInt random_below(Rng& rng, const BigInt& bound);

/// Uniform value in [1, bound); bound must be > 1. The standard "random
/// exponent in Z_q^*" helper used throughout the protocols.
BigInt random_nonzero_below(Rng& rng, const BigInt& bound);

}  // namespace p2pcash::bn
