// prime.h — probabilistic primality testing and prime/parameter generation.
//
// Used to generate the Schnorr-group parameters the paper prescribes
// (1024-bit p, 160-bit q with q | p-1) and the smaller test-size groups.

#pragma once

#include <cstddef>

#include "bn/bigint.h"
#include "bn/rng.h"

namespace p2pcash::bn {

/// Miller–Rabin with `rounds` random bases, preceded by trial division by
/// small primes. Error probability <= 4^-rounds for composite n.
bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 40);

/// Uniform random probable prime of exactly `bits` bits (top bit set, odd).
BigInt generate_prime(Rng& rng, std::size_t bits, int rounds = 40);

/// DSA-style parameters: primes (p, q) with q | p - 1, |p| = p_bits,
/// |q| = q_bits. Generation searches p = k*q + 1 over random k.
struct PqParams {
  BigInt p;
  BigInt q;
};
PqParams generate_pq(Rng& rng, std::size_t p_bits, std::size_t q_bits,
                     int rounds = 40);

}  // namespace p2pcash::bn
