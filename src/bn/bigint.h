// bigint.h — arbitrary-precision signed integers.
//
// This is the arithmetic substrate for the whole library: the Schnorr group,
// the Abe-Okamoto partially blind signature, and the Brands/Okamoto
// representation proofs all compute in Z_p / Z_q with 1024/160-bit moduli.
//
// Representation: sign-magnitude with little-endian 32-bit limbs.  The
// canonical (normalized) form has no leading zero limbs and zero is
// represented by an empty limb vector with non-negative sign.  All public
// operations return normalized values.
//
// The class is a regular value type (copyable, movable, equality-comparable,
// totally ordered) per C++ Core Guidelines C.10/C.61.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2pcash::bn {

/// Arbitrary-precision signed integer.
class BigInt {
 public:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;

  /// Zero.
  BigInt() = default;
  BigInt(std::int64_t v);   // NOLINT(google-explicit-constructor) — integers
  BigInt(std::uint64_t v);  // NOLINT — are genuinely substitutable here.
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}
  BigInt(unsigned v) : BigInt(static_cast<std::uint64_t>(v)) {}

  /// Parses decimal ("-123", "123") or, with prefix "0x"/"-0x", hexadecimal.
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view s);
  /// Parses a hexadecimal string without prefix (case-insensitive).
  static BigInt from_hex(std::string_view s);
  /// Parses a decimal string.
  static BigInt from_dec(std::string_view s);
  /// Interprets bytes as a big-endian unsigned integer.
  static BigInt from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Lowercase hex, no prefix, "-" for negatives, "0" for zero.
  std::string to_hex() const;
  /// Decimal string.
  std::string to_dec() const;
  /// Big-endian bytes, minimal length (empty for zero). Magnitude only.
  std::vector<std::uint8_t> to_bytes_be() const;
  /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
  /// Throws std::length_error if the magnitude does not fit.
  std::vector<std::uint8_t> to_bytes_be_padded(std::size_t len) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  /// Bit i (0 = least significant) of the magnitude.
  bool bit(std::size_t i) const;
  /// Sets bit i of the magnitude to 1.
  void set_bit(std::size_t i);
  /// Number of trailing zero bits of the magnitude (0 for zero).
  std::size_t count_trailing_zeros() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder with the sign of the dividend (C++ % semantics).
  BigInt& operator%=(const BigInt& rhs);
  BigInt& operator<<=(std::size_t bits);
  BigInt& operator>>=(std::size_t bits);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }
  friend BigInt operator<<(BigInt a, std::size_t bits) { return a <<= bits; }
  friend BigInt operator>>(BigInt a, std::size_t bits) { return a >>= bits; }

  /// Quotient and remainder in one pass (truncated division).
  /// Throws std::domain_error on division by zero.
  static std::pair<BigInt, BigInt> divmod(const BigInt& num, const BigInt& den);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return cmp(a, b) < 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return cmp(a, b) > 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return cmp(a, b) <= 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return cmp(a, b) >= 0;
  }
  /// Three-way comparison: -1, 0, +1.
  static int cmp(const BigInt& a, const BigInt& b);
  /// Magnitude-only comparison.
  static int cmp_magnitude(const BigInt& a, const BigInt& b);

  /// Value as int64 — precondition: fits (checked, throws std::overflow_error).
  std::int64_t to_int64() const;

  /// Read-only access to limbs (little-endian), for codec/Montgomery layers.
  std::span<const Limb> limbs() const { return limbs_; }

  /// Zeroizes the value (volatile stores, not elidable) and resets it to
  /// zero.  Call on secret scalars — keys, nonces, blinding factors —
  /// before they go out of scope.  Note: only the *current* limb buffer is
  /// wiped; intermediate buffers from earlier arithmetic are not tracked.
  void wipe() noexcept;

 private:
  static BigInt from_limbs(std::vector<Limb> limbs, bool negative);
  void normalize();

  // Magnitude helpers (ignore sign).
  static std::vector<Limb> mag_add(std::span<const Limb> a,
                                   std::span<const Limb> b);
  static std::vector<Limb> mag_sub(std::span<const Limb> a,
                                   std::span<const Limb> b);  // pre: a >= b
  static std::vector<Limb> mag_mul(std::span<const Limb> a,
                                   std::span<const Limb> b);
  static std::vector<Limb> mag_mul_school(std::span<const Limb> a,
                                          std::span<const Limb> b);
  static std::vector<Limb> mag_mul_karatsuba(std::span<const Limb> a,
                                             std::span<const Limb> b);
  static int mag_cmp(std::span<const Limb> a, std::span<const Limb> b);
  static void mag_divmod(std::span<const Limb> num, std::span<const Limb> den,
                         std::vector<Limb>& quot, std::vector<Limb>& rem);

  bool negative_ = false;
  std::vector<Limb> limbs_;  // little-endian, normalized
};

// ---------------------------------------------------------------------------
// Modular arithmetic. All functions require m > 0 and reduce results into
// [0, m). Inputs may be any sign; they are reduced first.
// ---------------------------------------------------------------------------

/// a mod m, always in [0, m).
BigInt mod(const BigInt& a, const BigInt& m);
/// (a + b) mod m.
BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m);
/// (a - b) mod m.
BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m);
/// (a * b) mod m.
BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
/// base^exp mod m for exp >= 0. Uses Montgomery form when m is odd.
BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);
/// Multiplicative inverse of a mod m; throws std::domain_error if
/// gcd(a, m) != 1.
BigInt mod_inverse(const BigInt& a, const BigInt& m);

/// Greatest common divisor (non-negative).
BigInt gcd(BigInt a, BigInt b);
/// Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b).
struct EgcdResult {
  BigInt g, x, y;
};
EgcdResult egcd(const BigInt& a, const BigInt& b);

}  // namespace p2pcash::bn
