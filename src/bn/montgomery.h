// montgomery.h — Montgomery-form modular multiplication and exponentiation.
//
// All protocol-critical arithmetic (blind signatures, representation proofs,
// Schnorr signatures) reduces to modular exponentiation with a fixed odd
// modulus, so we precompute a Montgomery context per modulus and use CIOS
// multiplication (Koç–Acar–Kaliski) with a fixed 4-bit window exponentiation.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bn/bigint.h"

namespace p2pcash::bn {

class FixedBaseTable;  // multi_exp.h

/// Precomputed context for arithmetic modulo a fixed odd modulus.
/// Thread-compatible: const methods are safe to call concurrently.
class MontgomeryCtx {
 public:
  /// Throws std::domain_error unless modulus is odd and > 1.
  explicit MontgomeryCtx(BigInt modulus);

  const BigInt& modulus() const { return modulus_; }

  /// base^exp mod modulus, exp >= 0 (throws std::domain_error if negative).
  BigInt exp(const BigInt& base, const BigInt& exponent) const;

  /// (a * b) mod modulus.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  // --- fixed-base / multi-exponentiation fast paths (multi_exp.cpp) ------

  /// Builds a fixed-base windowing table covering exponents up to
  /// `max_exp_bits` bits.  One-time cost ~(2^w/w)·max_exp_bits Montgomery
  /// multiplications; see FixedBaseTable::memory_bytes for the footprint.
  FixedBaseTable precompute_base(const BigInt& base, std::size_t max_exp_bits,
                                 std::size_t window_bits = 4) const;

  /// base^exp via the table: ceil(bits/w) multiplications, no squarings.
  /// Falls back to exp() when the exponent exceeds the table's coverage.
  /// exp >= 0 (throws std::domain_error if negative).
  BigInt exp_fixed(const FixedBaseTable& table, const BigInt& exponent) const;

  /// prod_i bases[i]^exponents[i]: Straus interleaving (one shared
  /// squaring ladder for all bases instead of one ladder each) for small
  /// batches, switching to Pippenger's bucket method at larger sizes,
  /// where per-window bucket accumulation beats per-base digit tables.
  /// Same result either way.
  /// Requires bases.size() == exponents.size(), all exponents >= 0.
  BigInt multi_exp(std::span<const BigInt> bases,
                   std::span<const BigInt> exponents) const;

 private:
  using Limb = BigInt::Limb;
  std::vector<Limb> to_mont(const BigInt& a) const;
  BigInt from_mont(std::vector<Limb> a) const;
  /// CIOS: returns a*b*R^{-1} mod n; inputs/outputs are n_limbs_ long.
  std::vector<Limb> mont_mul(const std::vector<Limb>& a,
                             const std::vector<Limb>& b) const;
  /// Bucket-method multi-exp for large batches (multi_exp.cpp).
  BigInt multi_exp_pippenger(std::span<const BigInt> bases,
                             std::span<const BigInt> exponents,
                             std::size_t max_bits) const;

  BigInt modulus_;
  std::vector<Limb> n_;     // modulus limbs, length n_limbs_
  std::size_t n_limbs_ = 0;
  Limb n0_inv_ = 0;         // -n^{-1} mod 2^32
  std::vector<Limb> r2_;    // R^2 mod n (Montgomery form of R)
  std::vector<Limb> one_;   // R mod n (Montgomery form of 1)
};

}  // namespace p2pcash::bn
