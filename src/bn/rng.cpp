#include "bn/rng.h"

#include <stdexcept>
#include <vector>

namespace p2pcash::bn {

BigInt random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) return BigInt{};
  std::vector<std::uint8_t> buf((bits + 7) / 8);
  rng.fill(buf);
  // Mask off excess high bits so the value is uniform in [0, 2^bits).
  unsigned excess = static_cast<unsigned>(buf.size() * 8 - bits);
  buf[0] &= static_cast<std::uint8_t>(0xffu >> excess);
  BigInt result = BigInt::from_bytes_be(buf);
  // The staging bytes are the secret-to-be; don't leave them on the heap.
  crypto::secure_wipe(buf);
  return result;
}

BigInt random_below(Rng& rng, const BigInt& bound) {
  if (bound.is_zero() || bound.is_negative())
    throw std::domain_error("random_below: bound must be positive");
  const std::size_t bits = bound.bit_length();
  // Rejection sampling: each draw succeeds with probability > 1/2.
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (candidate < bound) return candidate;
    candidate.wipe();  // rejected draws are still secret material
  }
}

BigInt random_nonzero_below(Rng& rng, const BigInt& bound) {
  if (bound <= BigInt{1})
    throw std::domain_error("random_nonzero_below: bound must be > 1");
  for (;;) {
    BigInt candidate = random_below(rng, bound);
    if (!candidate.is_zero()) return candidate;
  }
}

}  // namespace p2pcash::bn
