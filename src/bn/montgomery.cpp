#include "bn/montgomery.h"

#include <stdexcept>

namespace p2pcash::bn {

namespace {

// -n^{-1} mod 2^32 via Newton iteration (n odd).
BigInt::Limb neg_inverse_32(BigInt::Limb n) {
  BigInt::Limb x = n;  // 3-bit-correct seed: n * n ≡ 1 (mod 8) for odd n.
  for (int i = 0; i < 5; ++i) x *= 2 - n * x;  // doubles correct bits
  return static_cast<BigInt::Limb>(0u - x);
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(BigInt modulus) : modulus_(std::move(modulus)) {
  if (modulus_.is_negative() || modulus_ <= BigInt{1} || !modulus_.is_odd())
    throw std::domain_error("MontgomeryCtx: modulus must be odd and > 1");
  auto limbs = modulus_.limbs();
  n_.assign(limbs.begin(), limbs.end());
  n_limbs_ = n_.size();
  n0_inv_ = neg_inverse_32(n_[0]);
  // R = 2^(32 * n_limbs); compute R^2 mod n and R mod n via BigInt div.
  BigInt r = BigInt{1} << (BigInt::kLimbBits * n_limbs_);
  BigInt r_mod = mod(r, modulus_);
  BigInt r2_mod = mod(r * r, modulus_);
  auto pad = [this](const BigInt& v) {
    std::vector<Limb> out(n_limbs_, 0);
    auto src = v.limbs();
    for (std::size_t i = 0; i < src.size(); ++i) out[i] = src[i];
    return out;
  };
  one_ = pad(r_mod);
  r2_ = pad(r2_mod);
}

std::vector<MontgomeryCtx::Limb> MontgomeryCtx::mont_mul(
    const std::vector<Limb>& a, const std::vector<Limb>& b) const {
  const std::size_t s = n_limbs_;
  // CIOS with an (s+2)-limb accumulator.
  std::vector<Limb> t(s + 2, 0);
  for (std::size_t i = 0; i < s; ++i) {
    // t += a * b[i]
    std::uint64_t carry = 0;
    const std::uint64_t bi = b[i];
    for (std::size_t j = 0; j < s; ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(t[j]) +
                          static_cast<std::uint64_t>(a[j]) * bi + carry;
      t[j] = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[s]) + carry;
    t[s] = static_cast<Limb>(cur);
    t[s + 1] = static_cast<Limb>(cur >> 32);
    // Reduce: add m*n where m makes the low limb vanish, then shift.
    const std::uint64_t m =
        static_cast<Limb>(static_cast<std::uint64_t>(t[0]) * n0_inv_);
    cur = static_cast<std::uint64_t>(t[0]) + m * n_[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < s; ++j) {
      cur = static_cast<std::uint64_t>(t[j]) + m * n_[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<std::uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<Limb>(cur);
    t[s] = t[s + 1] + static_cast<Limb>(cur >> 32);
  }
  // Conditional final subtraction: t may be in [0, 2n).
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = s; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  std::vector<Limb> out(s, 0);
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < s; ++i) {
      std::int64_t v = static_cast<std::int64_t>(t[i]) -
                       static_cast<std::int64_t>(n_[i]) - borrow;
      if (v < 0) {
        v += (std::int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<Limb>(v);
    }
  } else {
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
              out.begin());
  }
  return out;
}

std::vector<MontgomeryCtx::Limb> MontgomeryCtx::to_mont(const BigInt& a) const {
  BigInt r = mod(a, modulus_);
  std::vector<Limb> out(n_limbs_, 0);
  auto src = r.limbs();
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = src[i];
  return mont_mul(out, r2_);
}

BigInt MontgomeryCtx::from_mont(std::vector<Limb> a) const {
  std::vector<Limb> one(n_limbs_, 0);
  one[0] = 1;
  std::vector<Limb> res = mont_mul(a, one);
  // Strip leading zeros and build a BigInt.
  while (!res.empty() && res.back() == 0) res.pop_back();
  std::vector<std::uint8_t> bytes(res.size() * 4);
  for (std::size_t i = 0; i < res.size(); ++i) {
    Limb limb = res[res.size() - 1 - i];
    bytes[4 * i + 0] = static_cast<std::uint8_t>(limb >> 24);
    bytes[4 * i + 1] = static_cast<std::uint8_t>(limb >> 16);
    bytes[4 * i + 2] = static_cast<std::uint8_t>(limb >> 8);
    bytes[4 * i + 3] = static_cast<std::uint8_t>(limb);
  }
  return BigInt::from_bytes_be(bytes);
}

BigInt MontgomeryCtx::mul(const BigInt& a, const BigInt& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

BigInt MontgomeryCtx::exp(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_negative())
    throw std::domain_error("MontgomeryCtx::exp: negative exponent");
  if (exponent.is_zero()) return mod(BigInt{1}, modulus_);
  const std::vector<Limb> mbase = to_mont(base);
  // Precompute mbase^0..mbase^15 for a fixed 4-bit left-to-right window.
  std::vector<std::vector<Limb>> table(16);
  table[0] = one_;
  table[1] = mbase;
  for (int i = 2; i < 16; ++i) table[i] = mont_mul(table[i - 1], mbase);
  const std::size_t bits = exponent.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  std::vector<Limb> acc = one_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    unsigned nib = 0;
    for (int k = 3; k >= 0; --k) {
      nib = (nib << 1) |
            (exponent.bit(w * 4 + static_cast<std::size_t>(k)) ? 1u : 0u);
    }
    if (started) {
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
    }
    if (nib != 0) {
      acc = started ? mont_mul(acc, table[nib]) : table[nib];
      started = true;
    } else if (!started) {
      continue;  // leading zero window
    }
  }
  return from_mont(std::move(acc));
}

BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m.is_negative())
    throw std::domain_error("mod_exp: modulus must be positive");
  if (exp.is_negative()) throw std::domain_error("mod_exp: negative exponent");
  if (m == BigInt{1}) return BigInt{};
  if (m.is_odd()) {
    MontgomeryCtx ctx(m);
    return ctx.exp(base, exp);
  }
  // Even modulus: plain square-and-multiply (rare path, used only in tests).
  BigInt result{1};
  BigInt b = mod(base, m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

}  // namespace p2pcash::bn
