// multi_exp.h — fixed-base precomputation tables and simultaneous
// (Straus/Shamir) multi-exponentiation on top of MontgomeryCtx.
//
// The protocol's cost is dominated by modular exponentiations whose bases
// are *fixed* for the lifetime of a group (the generators g, g1, g2, a
// broker public key, the per-info element z = F(info)).  For those bases a
// one-time table of small-digit powers turns a 160-bit exponentiation from
// ~200 Montgomery multiplications (square-and-multiply ladder) into ~40
// multiplications with no squarings at all (Brickell–Gordon–McCurley–Wilson
// fixed-base windowing).  Products of the form g1^a · g2^b with bases that
// are NOT precomputed still save all shared squarings via Straus
// interleaving.
//
// Neither path changes the mathematical result: callers observe the same
// group element as MontgomeryCtx::exp, only faster.  Cost accounting (the
// paper's Table 1 Exp counts) is the caller's business — see
// group::SchnorrGroup, which counts one Exp per *logical* exponentiation
// regardless of which implementation serves it.

#pragma once

#include <cstddef>
#include <vector>

#include "bn/bigint.h"
#include "bn/montgomery.h"

namespace p2pcash::bn {

/// Precomputed powers of one fixed base under one MontgomeryCtx.
///
/// For window width w and exponent capacity of `windows` base-2^w digits,
/// entry (i, d) holds base^(d · 2^(w·i)) in Montgomery form, d = 1..2^w-1.
/// An exponentiation is then the product of one table entry per nonzero
/// digit of the exponent: ceil(bits/w) multiplications, zero squarings.
///
/// Immutable after construction; safe to share across threads.
class FixedBaseTable {
 public:
  FixedBaseTable() = default;

  /// The base this table serves (not in Montgomery form).
  const BigInt& base() const { return base_; }
  /// True iff exponents of `exp_bits` bits are covered by the table.
  bool covers(std::size_t exp_bits) const {
    return exp_bits <= window_bits_ * windows_;
  }
  std::size_t window_bits() const { return window_bits_; }
  /// Table footprint in bytes (the precompute memory cost per base).
  std::size_t memory_bytes() const;

 private:
  friend class MontgomeryCtx;

  BigInt base_;
  std::size_t window_bits_ = 0;
  std::size_t windows_ = 0;
  // entries_[i * ((1<<w) - 1) + (d - 1)] = base^(d << (w*i)), Montgomery form.
  std::vector<std::vector<BigInt::Limb>> entries_;
};

}  // namespace p2pcash::bn
