#include "bn/prime.h"

#include <array>
#include <stdexcept>

#include "bn/montgomery.h"

namespace p2pcash::bn {

namespace {

// Primes below 1000 for fast trial division.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

std::uint32_t mod_small(const BigInt& n, std::uint32_t d) {
  std::uint64_t rem = 0;
  auto limbs = n.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs[i]) % d;
  }
  return static_cast<std::uint32_t>(rem);
}

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n.is_negative()) return false;
  if (n < BigInt{2}) return false;
  for (auto p : kSmallPrimes) {
    if (n == BigInt{p}) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // Miller–Rabin: n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  const std::size_t s = n_minus_1.count_trailing_zeros();
  const BigInt d = n_minus_1 >> s;
  const MontgomeryCtx ctx(n);
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    BigInt a = random_below(rng, n - BigInt{3}) + BigInt{2};
    BigInt x = ctx.exp(a, d);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = ctx.mul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(Rng& rng, std::size_t bits, int rounds) {
  if (bits < 2) throw std::domain_error("generate_prime: bits must be >= 2");
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    candidate.set_bit(bits - 1);  // exact bit length
    candidate.set_bit(0);         // odd
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

PqParams generate_pq(Rng& rng, std::size_t p_bits, std::size_t q_bits,
                     int rounds) {
  if (q_bits + 1 >= p_bits)
    throw std::domain_error("generate_pq: need q_bits + 1 < p_bits");
  const BigInt q = generate_prime(rng, q_bits, rounds);
  const std::size_t k_bits = p_bits - q_bits;
  for (;;) {
    // p = k*q + 1 with k even so p is odd, sized so |p| = p_bits.
    BigInt k = random_bits(rng, k_bits);
    k.set_bit(k_bits - 1);
    if (k.is_odd()) k += BigInt{1};
    BigInt p = k * q + BigInt{1};
    if (p.bit_length() != p_bits) continue;
    if (is_probable_prime(p, rng, rounds)) return {p, q};
  }
}

}  // namespace p2pcash::bn
