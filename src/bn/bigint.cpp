#include "bn/bigint.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace p2pcash::bn {

namespace {

constexpr std::size_t kKaratsubaThreshold = 24;  // limbs

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void trim_leading_zero_limbs(std::vector<BigInt::Limb>& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

}  // namespace

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Avoid UB negating INT64_MIN: go through the unsigned complement.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  if (mag & 0xffffffffull) limbs_.push_back(static_cast<Limb>(mag));
  if (mag >> 32) {
    if (limbs_.empty()) limbs_.push_back(0);
    limbs_.push_back(static_cast<Limb>(mag >> 32));
  }
  normalize();
}

BigInt::BigInt(std::uint64_t v) {
  if (v & 0xffffffffull) limbs_.push_back(static_cast<Limb>(v));
  if (v >> 32) {
    if (limbs_.empty()) limbs_.push_back(0);
    limbs_.push_back(static_cast<Limb>(v >> 32));
  }
  normalize();
}

BigInt BigInt::from_limbs(std::vector<Limb> limbs, bool negative) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.negative_ = negative;
  r.normalize();
  return r;
}

void BigInt::normalize() {
  trim_leading_zero_limbs(limbs_);
  if (limbs_.empty()) negative_ = false;
}

void BigInt::wipe() noexcept {
  if (!limbs_.empty()) {
    volatile Limb* p = limbs_.data();
    for (std::size_t i = 0; i < limbs_.size(); ++i) p[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
    __asm__ __volatile__("" : : "r"(limbs_.data()) : "memory");
#endif
  }
  limbs_.clear();
  negative_ = false;
}

BigInt BigInt::from_string(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  BigInt r;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    r = from_hex(s.substr(2));
  } else {
    r = from_dec(s);
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_hex(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_hex: empty string");
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
    if (s.empty()) throw std::invalid_argument("BigInt::from_hex: bare sign");
  }
  BigInt r;
  r.limbs_.reserve(s.size() / 8 + 1);
  // Consume from the least-significant end, 8 hex digits per limb.
  std::size_t pos = s.size();
  while (pos > 0) {
    std::size_t take = pos >= 8 ? 8 : pos;
    Limb limb = 0;
    for (std::size_t i = pos - take; i < pos; ++i) {
      int d = hex_digit(s[i]);
      if (d < 0) throw std::invalid_argument("BigInt::from_hex: bad digit");
      limb = (limb << 4) | static_cast<Limb>(d);
    }
    r.limbs_.push_back(limb);
    pos -= take;
  }
  r.negative_ = neg;
  r.normalize();
  return r;
}

BigInt BigInt::from_dec(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_dec: empty string");
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
    if (s.empty()) throw std::invalid_argument("BigInt::from_dec: bare sign");
  }
  BigInt r;
  // Process 9 decimal digits at a time: r = r * 10^9 + chunk.
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t take = std::min<std::size_t>(9, s.size() - i);
    std::uint32_t chunk = 0;
    std::uint32_t scale = 1;
    for (std::size_t j = 0; j < take; ++j, ++i) {
      char c = s[i];
      if (c < '0' || c > '9')
        throw std::invalid_argument("BigInt::from_dec: bad digit");
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      scale *= 10;
    }
    // r = r * scale + chunk, in-place over limbs.
    DoubleLimb carry = chunk;
    for (auto& limb : r.limbs_) {
      DoubleLimb t = static_cast<DoubleLimb>(limb) * scale + carry;
      limb = static_cast<Limb>(t);
      carry = t >> 32;
    }
    if (carry) r.limbs_.push_back(static_cast<Limb>(carry));
  }
  r.negative_ = neg;
  r.normalize();
  return r;
}

BigInt BigInt::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigInt r;
  r.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the (bytes.size()-1-i)-th byte from the LSB end.
    std::size_t byte_from_lsb = bytes.size() - 1 - i;
    r.limbs_[byte_from_lsb / 4] |= static_cast<Limb>(bytes[i])
                                   << (8 * (byte_from_lsb % 4));
  }
  r.normalize();
  return r;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  if (negative_) out.push_back('-');
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      unsigned nib = (limbs_[i] >> shift) & 0xf;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  std::vector<Limb> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide work by 10^9, collecting the remainder.
    DoubleLimb rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      DoubleLimb cur = (rem << 32) | work[i];
      work[i] = static_cast<Limb>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    trim_leading_zero_limbs(work);
    auto chunk = static_cast<std::uint32_t>(rem);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::vector<std::uint8_t> BigInt::to_bytes_be() const {
  std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be_padded(nbytes);
}

std::vector<std::uint8_t> BigInt::to_bytes_be_padded(std::size_t len) const {
  std::size_t need = (bit_length() + 7) / 8;
  if (need > len)
    throw std::length_error("BigInt::to_bytes_be_padded: value too large");
  std::vector<std::uint8_t> out(len, 0);
  for (std::size_t byte_from_lsb = 0; byte_from_lsb < need; ++byte_from_lsb) {
    Limb limb = limbs_[byte_from_lsb / 4];
    out[len - 1 - byte_from_lsb] =
        static_cast<std::uint8_t>(limb >> (8 * (byte_from_lsb % 4)));
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  Limb top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

void BigInt::set_bit(std::size_t i) {
  std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= Limb{1} << (i % kLimbBits);
}

std::size_t BigInt::count_trailing_zeros() const {
  if (limbs_.empty()) return 0;
  std::size_t tz = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    if (limbs_[i] == 0) {
      tz += kLimbBits;
      continue;
    }
    Limb v = limbs_[i];
    while (!(v & 1u)) {
      ++tz;
      v >>= 1;
    }
    break;
  }
  return tz;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

int BigInt::mag_cmp(std::span<const Limb> a, std::span<const Limb> b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::cmp_magnitude(const BigInt& a, const BigInt& b) {
  return mag_cmp(a.limbs_, b.limbs_);
}

int BigInt::cmp(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  int m = mag_cmp(a.limbs_, b.limbs_);
  return a.negative_ ? -m : m;
}

std::vector<BigInt::Limb> BigInt::mag_add(std::span<const Limb> a,
                                          std::span<const Limb> b) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<Limb> out(a.size() + 1, 0);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb t = carry + a[i] + (i < b.size() ? b[i] : 0);
    out[i] = static_cast<Limb>(t);
    carry = t >> 32;
  }
  out[a.size()] = static_cast<Limb>(carry);
  trim_leading_zero_limbs(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mag_sub(std::span<const Limb> a,
                                          std::span<const Limb> b) {
  assert(mag_cmp(a, b) >= 0);
  std::vector<Limb> out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t t = static_cast<std::int64_t>(a[i]) -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0) -
                     borrow;
    if (t < 0) {
      t += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<Limb>(t);
  }
  trim_leading_zero_limbs(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mag_mul_school(std::span<const Limb> a,
                                                 std::span<const Limb> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    DoubleLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb t = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(t);
      carry = t >> 32;
    }
    out[i + b.size()] = static_cast<Limb>(carry);
  }
  trim_leading_zero_limbs(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mag_mul_karatsuba(std::span<const Limb> a,
                                                    std::span<const Limb> b) {
  // Split at half of the larger operand: x = x1*W^m + x0.
  std::size_t m = std::max(a.size(), b.size()) / 2;
  auto lo = [m](std::span<const Limb> x) {
    return x.subspan(0, std::min(m, x.size()));
  };
  auto hi = [m](std::span<const Limb> x) {
    return x.size() > m ? x.subspan(m) : std::span<const Limb>{};
  };
  std::vector<Limb> z0 = mag_mul(lo(a), lo(b));
  std::vector<Limb> z2 = mag_mul(hi(a), hi(b));
  std::vector<Limb> sa = mag_add(lo(a), hi(a));
  std::vector<Limb> sb = mag_add(lo(b), hi(b));
  std::vector<Limb> z1 = mag_mul(sa, sb);
  // z1 -= z0 + z2
  z1 = mag_sub(z1, mag_add(z0, z2));
  // result = z2*W^(2m) + z1*W^m + z0
  std::vector<Limb> out(a.size() + b.size() + 1, 0);
  auto add_at = [&out](const std::vector<Limb>& v, std::size_t shift) {
    DoubleLimb carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      DoubleLimb t = static_cast<DoubleLimb>(out[shift + i]) + v[i] + carry;
      out[shift + i] = static_cast<Limb>(t);
      carry = t >> 32;
    }
    for (; carry; ++i) {
      DoubleLimb t = static_cast<DoubleLimb>(out[shift + i]) + carry;
      out[shift + i] = static_cast<Limb>(t);
      carry = t >> 32;
    }
  };
  add_at(z0, 0);
  add_at(z1, m);
  add_at(z2, 2 * m);
  trim_leading_zero_limbs(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mag_mul(std::span<const Limb> a,
                                          std::span<const Limb> b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold)
    return mag_mul_school(a, b);
  return mag_mul_karatsuba(a, b);
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = mag_add(limbs_, rhs.limbs_);
  } else {
    int c = mag_cmp(limbs_, rhs.limbs_);
    if (c == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (c > 0) {
      limbs_ = mag_sub(limbs_, rhs.limbs_);
    } else {
      limbs_ = mag_sub(rhs.limbs_, limbs_);
      negative_ = rhs.negative_;
    }
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  // a - b == a + (-b); inline the sign flip to avoid a copy of rhs.limbs_.
  if (negative_ != rhs.negative_) {
    limbs_ = mag_add(limbs_, rhs.limbs_);
  } else {
    int c = mag_cmp(limbs_, rhs.limbs_);
    if (c == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (c > 0) {
      limbs_ = mag_sub(limbs_, rhs.limbs_);
    } else {
      limbs_ = mag_sub(rhs.limbs_, limbs_);
      negative_ = !rhs.negative_;
    }
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  bool neg = negative_ != rhs.negative_;
  limbs_ = mag_mul(limbs_, rhs.limbs_);
  negative_ = neg;
  normalize();
  return *this;
}

void BigInt::mag_divmod(std::span<const Limb> num, std::span<const Limb> den,
                        std::vector<Limb>& quot, std::vector<Limb>& rem) {
  assert(!den.empty());
  if (mag_cmp(num, den) < 0) {
    quot.clear();
    rem.assign(num.begin(), num.end());
    return;
  }
  if (den.size() == 1) {
    // Short division.
    quot.assign(num.size(), 0);
    DoubleLimb d = den[0];
    DoubleLimb r = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      DoubleLimb cur = (r << 32) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      r = cur % d;
    }
    trim_leading_zero_limbs(quot);
    rem.clear();
    if (r) rem.push_back(static_cast<Limb>(r));
    return;
  }
  // Knuth Algorithm D.
  const std::size_t n = den.size();
  const std::size_t m = num.size() - n;
  // D1: normalize so the top limb of the divisor has its high bit set.
  unsigned shift = 0;
  {
    Limb top = den[n - 1];
    while (!(top & 0x80000000u)) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl = [](std::span<const Limb> v, unsigned s, std::size_t extra) {
    std::vector<Limb> out(v.size() + extra, 0);
    if (s == 0) {
      std::copy(v.begin(), v.end(), out.begin());
      return out;
    }
    Limb carry = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] = (v[i] << s) | carry;
      carry = static_cast<Limb>(v[i] >> (32 - s));
    }
    if (extra) out[v.size()] = carry;
    return out;
  };
  std::vector<Limb> u = shl(num, shift, 1);          // size m+n+1
  const std::vector<Limb> v = shl(den, shift, 0);    // size n
  quot.assign(m + 1, 0);
  const DoubleLimb b = DoubleLimb{1} << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat.
    DoubleLimb top2 = (static_cast<DoubleLimb>(u[j + n]) << 32) | u[j + n - 1];
    DoubleLimb q_hat = top2 / v[n - 1];
    DoubleLimb r_hat = top2 % v[n - 1];
    while (q_hat >= b ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= b) break;
    }
    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb p = q_hat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffull) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(b);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    bool negative = t < 0;
    u[j + n] = static_cast<Limb>(t);
    // D5/D6: if we subtracted too much, add back.
    if (negative) {
      --q_hat;
      DoubleLimb c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb s = static_cast<DoubleLimb>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<Limb>(s);
        c2 = s >> 32;
      }
      u[j + n] = static_cast<Limb>(u[j + n] + c2);
    }
    quot[j] = static_cast<Limb>(q_hat);
  }
  trim_leading_zero_limbs(quot);
  // D8: denormalize the remainder.
  rem.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      rem[i] = (rem[i] >> shift) | (rem[i + 1] << (32 - shift));
    }
    rem[n - 1] >>= shift;
  }
  trim_leading_zero_limbs(rem);
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num,
                                         const BigInt& den) {
  if (den.is_zero()) throw std::domain_error("BigInt: division by zero");
  std::vector<Limb> q, r;
  mag_divmod(num.limbs_, den.limbs_, q, r);
  BigInt quot = from_limbs(std::move(q), num.negative_ != den.negative_);
  BigInt rem = from_limbs(std::move(r), num.negative_);
  return {std::move(quot), std::move(rem)};
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = divmod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = divmod(*this, rhs).second;
  return *this;
}

BigInt& BigInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / kLimbBits;
  unsigned bit_shift = bits % kLimbBits;
  std::vector<Limb> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift)
      out[i + limb_shift + 1] |= static_cast<Limb>(limbs_[i] >> (32 - bit_shift));
  }
  limbs_ = std::move(out);
  normalize();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / kLimbBits;
  unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<Limb> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out[i] |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
  }
  limbs_ = std::move(out);
  normalize();
  return *this;
}

std::int64_t BigInt::to_int64() const {
  if (bit_length() > 64) throw std::overflow_error("BigInt::to_int64");
  std::uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() > 1) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!negative_) {
    if (mag > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
      throw std::overflow_error("BigInt::to_int64");
    return static_cast<std::int64_t>(mag);
  }
  // Negative: magnitudes up to 2^63 (INT64_MIN) are representable.
  if (mag > std::uint64_t{1} << 63)
    throw std::overflow_error("BigInt::to_int64");
  return static_cast<std::int64_t>(~mag + 1);
}

// ---------------------------------------------------------------------------
// Modular arithmetic
// ---------------------------------------------------------------------------

BigInt mod(const BigInt& a, const BigInt& m) {
  if (m.is_zero() || m.is_negative())
    throw std::domain_error("mod: modulus must be positive");
  BigInt r = a % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(a + b, m);
}

BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(a - b, m);
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(a * b, m);
}

BigInt gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

EgcdResult egcd(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid on the given (possibly negative) inputs.
  BigInt old_r = a, r = b;
  BigInt old_s = 1, s = 0;
  BigInt old_t = 0, t = 1;
  while (!r.is_zero()) {
    auto [q, rem] = BigInt::divmod(old_r, r);
    old_r = std::move(r);
    r = std::move(rem);
    BigInt tmp_s = old_s - q * s;
    old_s = std::move(s);
    s = std::move(tmp_s);
    BigInt tmp_t = old_t - q * t;
    old_t = std::move(t);
    t = std::move(tmp_t);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return {std::move(old_r), std::move(old_s), std::move(old_t)};
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m.is_zero() || m.is_negative())
    throw std::domain_error("mod_inverse: modulus must be positive");
  auto [g, x, y] = egcd(mod(a, m), m);
  (void)y;
  if (g != BigInt{1})
    throw std::domain_error("mod_inverse: not invertible");
  return mod(x, m);
}

}  // namespace p2pcash::bn
