#include "baseline/online_clearing.h"

#include <algorithm>
#include <cmath>

namespace p2pcash::baseline {

namespace {
double uniform01(bn::Rng& rng) {
  return static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
}
}  // namespace

OnlineClearingBroker::RunStats OnlineClearingBroker::simulate(
    Options options, std::uint64_t payments, double arrival_rate_per_s,
    bn::Rng& rng, double outage_start_ms, double outage_end_ms) {
  RunStats stats;
  const double mean_interarrival_ms = 1000.0 / arrival_rate_per_s;
  double arrival = 0;            // next arrival time
  double server_free_at = 0;     // broker becomes idle at this time
  double busy_ms = 0;
  double last_arrival = 0;

  for (std::uint64_t i = 0; i < payments; ++i) {
    // Poisson arrivals: exponential interarrival times.
    arrival += -mean_interarrival_ms * std::log(1.0 - uniform01(rng));
    last_arrival = arrival;

    if (outage_start_ms >= 0 && arrival >= outage_start_ms &&
        arrival < outage_end_ms) {
      ++stats.failed_outage;  // broker unreachable: payment cannot clear
      continue;
    }

    const double uplink =
        options.latency_lo_ms +
        (options.latency_hi_ms - options.latency_lo_ms) * uniform01(rng);
    const double downlink =
        options.latency_lo_ms +
        (options.latency_hi_ms - options.latency_lo_ms) * uniform01(rng);

    const double reach_broker = arrival + uplink;
    const double start_service = std::max(reach_broker, server_free_at);
    const double end_service = start_service + options.service_ms;
    server_free_at = end_service;
    busy_ms += options.service_ms;

    stats.latency_ms.add(end_service + downlink - arrival);
    ++stats.cleared;
  }
  if (last_arrival > 0) stats.broker_utilization = busy_ms / last_arrival;
  return stats;
}

}  // namespace p2pcash::baseline
