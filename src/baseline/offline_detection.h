// offline_detection.h — baseline: off-line double-spending *detection*.
//
// Brands/Chaum-Fiat-Naor style: merchants accept a coin after local
// verification only; double-spending surfaces when transcripts reach the
// broker at deposit time, where the two responses reveal the secrets (in
// those schemes, the spender's identity — which is why they need client
// accounts and security deposits, the very requirements the paper set out
// to remove).  Bench A4 measures the attacker's exposure window: how many
// merchants a double-spender defrauds before the first deposit lands,
// as a function of the merchants' deposit delay.
//
// This baseline reuses the real coin machinery: real coins, real NIZK
// transcripts, real broker extraction — only the witness is bypassed.

#pragma once

#include <cstdint>

#include "bn/rng.h"
#include "group/schnorr_group.h"

namespace p2pcash::baseline {

class OfflineDetection {
 public:
  struct Options {
    /// How often merchants batch-deposit, in ms.
    double deposit_interval_ms = 3600'000;
    /// Attacker's spending rate while the window is open (spends/s).
    double spend_rate_per_s = 1.0;
    std::size_t merchants = 100;
  };

  struct RunStats {
    std::uint64_t fraudulent_spends = 0;  ///< services obtained with 1 coin
    std::uint64_t detected_at_deposit = 0;
    double detection_delay_ms = 0;  ///< first spend -> first detection
    bool secrets_extracted = false; ///< broker recovered representations
  };

  /// Simulates one attacker double-spending a single real coin at as many
  /// merchants as possible until the first deposit exposes it.  Uses real
  /// withdrawal + transcripts (no witness step) and real extraction at the
  /// broker.
  static RunStats simulate(const group::SchnorrGroup& grp, Options options,
                           bn::Rng& rng);
};

}  // namespace p2pcash::baseline
