// online_clearing.h — baseline: Chaum-style on-line clearing.
//
// The original untraceable e-cash design (Chaum '82) requires the broker
// to clear every coin on-line before the merchant provides service.  The
// paper's introduction rejects this for two reasons: the broker becomes a
// single point of failure, and it must be provisioned for peak load.
// Bench A3 quantifies both: payment latency vs. offered load at a
// single-server broker (an M/D/1 queue, simulated exactly), and the outage
// behaviour when the broker goes down — contrasted with the witness
// scheme, whose per-witness load shrinks as the merchant network grows.

#pragma once

#include <cstdint>

#include "bn/rng.h"
#include "metrics/stats.h"
#include "simnet/sim.h"

namespace p2pcash::baseline {

class OnlineClearingBroker {
 public:
  struct Options {
    /// Broker CPU time to verify + record one coin (ms). The witness
    /// scheme pays the same check, but spread across all merchants.
    double service_ms = 10.0;
    /// One-way WAN latency bounds to the broker (ms).
    double latency_lo_ms = 25.0;
    double latency_hi_ms = 50.0;
  };

  /// Results over a simulated run.
  struct RunStats {
    metrics::RunningStats latency_ms;   ///< merchant-observed clearing time
    std::uint64_t cleared = 0;
    std::uint64_t failed_outage = 0;    ///< arrived while the broker was down
    double broker_utilization = 0;      ///< busy time / span
  };

  /// Simulates `payments` Poisson arrivals at `arrival_rate_per_s` against
  /// a single FIFO broker.  `outage` optionally takes the broker down for
  /// [outage_start_ms, outage_end_ms) — arrivals in that window fail (the
  /// paper's single-point-of-failure argument).
  static RunStats simulate(Options options, std::uint64_t payments,
                           double arrival_rate_per_s, bn::Rng& rng,
                           double outage_start_ms = -1,
                           double outage_end_ms = -1);
};

}  // namespace p2pcash::baseline
