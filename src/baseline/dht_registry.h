// dht_registry.h — baseline: a DHT spent-coin database (WhoPay / Hoepman).
//
// The approach the paper argues against (§2): merchants publish spent coins
// into a Chord DHT and query it before accepting a payment.  Guarantees are
// only probabilistic once peers can be compromised: a malicious replica
// swallows the spent-record or answers "unseen", and a malicious router
// can send the lookup astray.  Bench A2 measures exactly this: double
// spends accepted vs. fraction of compromised nodes, against the witness
// scheme's hard zero.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "overlay/chord.h"

namespace p2pcash::baseline {

class DhtSpentRegistry {
 public:
  struct Options {
    std::size_t nodes = 128;
    std::size_t replicas = 3;       ///< successor-list replication factor
    double malicious_fraction = 0;  ///< nodes that suppress spent records
    bool malicious_misroute = false;  ///< malicious nodes also derail lookups
  };

  DhtSpentRegistry(Options options, bn::Rng& rng);

  /// Result of a check-then-record payment attempt.
  struct CheckResult {
    bool seen_before = false;  ///< some honest replica reported the coin
    std::size_t hops = 0;      ///< route length of the lookup
    bool routed = true;        ///< lookup reached the replica set at all
  };

  /// The merchant-side protocol: look up `coin_point` from a random node,
  /// then record it on the replica set.  Honest replicas store and report
  /// truthfully; malicious replicas store nothing and always report
  /// "unseen".
  CheckResult check_and_record(const overlay::ChordId& coin_point);

  std::size_t node_count() const { return ring_.size(); }
  std::size_t malicious_count() const { return malicious_.size(); }
  bool is_malicious(std::size_t node) const {
    return malicious_.contains(node);
  }

 private:
  Options options_;
  bn::Rng& rng_;
  overlay::ChordRing ring_;
  std::set<std::size_t> malicious_;
  /// Per-node stored records (honest nodes only ever hold entries).
  std::vector<std::set<bn::BigInt>> storage_;
};

}  // namespace p2pcash::baseline
