#include "baseline/offline_detection.h"

#include <cstdio>

#include "ecash/broker.h"
#include "ecash/transcript.h"
#include "ecash/wallet.h"
#include "nizk/representation.h"

namespace p2pcash::baseline {

using namespace p2pcash::ecash;

OfflineDetection::RunStats OfflineDetection::simulate(
    const group::SchnorrGroup& grp, Options options, bn::Rng& rng) {
  RunStats stats;

  // Real setup: broker, one registered merchant per victim, one coin.
  Broker::Config config;
  config.witness_n = 1;
  config.witness_k = 1;
  Broker broker(grp, rng, config);
  std::vector<MerchantId> merchants;
  for (std::size_t i = 0; i < options.merchants; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "v%04u", static_cast<unsigned>(i));
    auto key = sig::KeyPair::generate(grp, rng);
    broker.register_merchant(buf, key.public_key(), 0);
    merchants.emplace_back(buf);
  }
  broker.publish_witness_table(0);

  Wallet wallet(grp, broker.coin_key(), broker.identity_key(), rng);
  auto offer = broker.start_withdrawal(100, /*now=*/0);
  auto state = wallet.begin_withdrawal(offer.value());
  auto response = broker.finish_withdrawal(state.session, state.e);
  auto coin =
      wallet.complete_withdrawal(state, response.value(),
                                 broker.current_table());
  if (!coin) return stats;  // cannot happen with an honest broker

  // The attack: spend the same coin at merchant after merchant.  Without a
  // witness in the loop every local check passes — the transcripts are
  // genuinely valid.  Each victim deposits `deposit_interval_ms` after its
  // own sale; the attack run ends when the first double deposit hits.
  const double spend_gap_ms = 1000.0 / options.spend_rate_per_s;
  double first_spend = -1;
  double first_detection = -1;
  std::vector<std::pair<double, PaymentTranscript>> pending_deposits;

  double now = 0;
  std::optional<nizk::ExtractedSecrets> extracted;
  nizk::ChallengeResponse first_cr;
  bool have_first = false;

  for (std::size_t i = 0; i < merchants.size(); ++i) {
    now += spend_gap_ms;
    // Merchant-side checks (coin + NIZK) all pass:
    auto intent = wallet.prepare_payment(coin.value(), merchants[i]);
    PaymentTranscript t;
    t.coin = coin.value().coin;
    t.merchant = merchants[i];
    t.datetime = static_cast<Timestamp>(now);
    t.salt = intent.salt;
    bn::BigInt d = payment_challenge(grp, t.coin, t.merchant, t.datetime);
    t.resp = nizk::respond(grp, coin.value().secret, d);
    if (!verify_transcript_proof(grp, t)) continue;  // cannot happen
    if (first_spend < 0) first_spend = now;
    ++stats.fraudulent_spends;
    pending_deposits.emplace_back(now + options.deposit_interval_ms, t);

    // Extraction material: the broker can recover the secrets as soon as
    // two transcripts have been deposited.
    if (!have_first) {
      first_cr = nizk::ChallengeResponse{d, t.resp};
      have_first = true;
    } else if (!extracted) {
      extracted = nizk::extract(grp, first_cr, nizk::ChallengeResponse{d, t.resp});
    }

    // Does the second-earliest deposit land before the next spend?  If so
    // the broker has two transcripts of one coin: detection.
    if (pending_deposits.size() >= 2) {
      double second_deposit_due = pending_deposits[1].first;
      if (second_deposit_due <= now + spend_gap_ms) {
        first_detection = second_deposit_due;
        break;
      }
    }
  }

  if (first_detection >= 0) {
    stats.detected_at_deposit = 1;
    stats.detection_delay_ms = first_detection - first_spend;
  }
  stats.secrets_extracted =
      extracted.has_value() &&
      nizk::verify_representation(grp, coin.value().coin.bare.a,
                                  extracted->of_a);
  return stats;
}

}  // namespace p2pcash::baseline
