#include "baseline/dht_registry.h"

namespace p2pcash::baseline {

DhtSpentRegistry::DhtSpentRegistry(Options options, bn::Rng& rng)
    : options_(options), rng_(rng), ring_(options.nodes, rng) {
  storage_.resize(ring_.size());
  // Sample the compromised set uniformly without replacement.
  const auto target = static_cast<std::size_t>(
      options_.malicious_fraction * static_cast<double>(ring_.size()));
  while (malicious_.size() < target) {
    malicious_.insert(static_cast<std::size_t>(rng_.next_u64() % ring_.size()));
  }
}

DhtSpentRegistry::CheckResult DhtSpentRegistry::check_and_record(
    const overlay::ChordId& coin_point) {
  CheckResult result;
  // The querying merchant starts the lookup from a random (honest) vantage.
  std::size_t start = static_cast<std::size_t>(rng_.next_u64() % ring_.size());
  auto path = ring_.route(start, coin_point);
  result.hops = path.size() - 1;

  if (options_.malicious_misroute) {
    // If any intermediate hop is malicious, it misroutes: the lookup never
    // reaches the true replica set and reports "unseen".
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (malicious_.contains(path[i])) {
        result.routed = false;
        break;
      }
    }
  }

  auto replicas = ring_.replica_set(coin_point, options_.replicas);
  if (result.routed) {
    for (auto node : replicas) {
      if (malicious_.contains(node)) continue;  // lies: "unseen"
      if (storage_[node].contains(coin_point)) {
        result.seen_before = true;
        break;
      }
    }
  }
  // Record phase: honest replicas store; malicious replicas drop.
  for (auto node : replicas) {
    if (!malicious_.contains(node)) storage_[node].insert(coin_point);
  }
  return result;
}

}  // namespace p2pcash::baseline
