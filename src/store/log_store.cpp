#include "store/log_store.h"

#include <utility>

#include "obs/metrics_registry.h"
#include "store/crc32c.h"

namespace p2pcash::store {
namespace {

std::uint32_t load_u32be(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::vector<std::uint8_t> LogStore::frame_record(
    std::uint8_t kind, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + body.size());
  payload.push_back(kind);
  payload.insert(payload.end(), body.begin(), body.end());

  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  store_u32be(out, static_cast<std::uint32_t>(payload.size()));
  store_u32be(out, crc32c(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

LogStore::LogStore(Vfs& vfs, std::string name, Options options)
    : vfs_(vfs),
      name_(std::move(name)),
      tmp_name_(name_ + ".tmp"),
      options_(options) {
  if (options_.metrics) {
    fsync_ms_ = &options_.metrics->histogram("store_fsync_ms");
    batch_records_ =
        &options_.metrics->histogram("store_commit_batch_records");
    appends_total_ = &options_.metrics->counter("store_appends_total");
    commits_total_ = &options_.metrics->counter("store_commits_total");
    truncated_total_ =
        &options_.metrics->counter("store_truncated_bytes_total");
  }
  open_and_scan();
}

void LogStore::open_and_scan() {
  // A leftover compaction temp means we crashed before the rename: the
  // old log is intact and authoritative; the temp is garbage.
  if (vfs_.exists(tmp_name_)) vfs_.remove(tmp_name_);

  sync::MutexLock lock(mu_);
  file_ = vfs_.open(name_);
  const std::vector<std::uint8_t> bytes = file_->read_all();

  // Resumable scan: walk valid records, remember where the last one ends.
  std::size_t pos = 0;
  std::size_t valid_end = 0;
  while (bytes.size() - pos >= kFrameHeaderBytes) {
    const std::uint32_t len = load_u32be(&bytes[pos]);
    const std::uint32_t crc = load_u32be(&bytes[pos + 4]);
    if (len == 0 || len > options_.max_record_bytes) break;
    if (bytes.size() - pos - kFrameHeaderBytes < len) break;  // torn payload
    const std::span<const std::uint8_t> payload(&bytes[pos + kFrameHeaderBytes],
                                                len);
    if (crc32c(payload) != crc) break;
    const std::uint8_t kind = payload[0];
    if (kind != kRecordCheckpoint && kind != kRecordDelta) break;

    const std::span<const std::uint8_t> body = payload.subspan(1);
    if (kind == kRecordCheckpoint) {
      recovered_.snapshot.assign(body.begin(), body.end());
      recovered_.deltas.clear();
    } else {
      recovered_.deltas.emplace_back(body.begin(), body.end());
    }
    ++stats_.recovered_records;
    pos += kFrameHeaderBytes + len;
    valid_end = pos;
  }

  if (valid_end < bytes.size()) {
    stats_.truncated_bytes = bytes.size() - valid_end;
    if (truncated_total_) truncated_total_->inc(stats_.truncated_bytes);
    file_->truncate(valid_end);
  }
  written_ = valid_end;
  synced_ = valid_end;  // everything surviving a reopen is on disk
}

bool LogStore::empty() const {
  sync::MutexLock lock(mu_);
  return written_ == 0 && stats_.recovered_records == 0;
}

Recovered LogStore::recover() {
  sync::MutexLock lock(mu_);
  return recovered_;
}

void LogStore::append_framed(std::uint8_t kind,
                             std::span<const std::uint8_t> body) {
  const std::vector<std::uint8_t> rec = frame_record(kind, body);
  file_->append(rec);
  written_ += rec.size();
  ++pending_records_;
  ++stats_.appended_records;
  stats_.appended_bytes += rec.size();
  if (appends_total_) appends_total_->inc();
}

void LogStore::append(std::span<const std::uint8_t> delta) {
  sync::MutexLock lock(mu_);
  append_framed(kRecordDelta, delta);
}

// Manual lock/unlock: the leader must release mu_ across the fsync so
// appends and other committers keep flowing, which scoped RAII cannot
// express.  The CondVar wait() handles its own release/reacquire.
void LogStore::commit() P2P_NO_THREAD_SAFETY_ANALYSIS {
  mu_.lock();
  const std::uint64_t target = written_;
  if (target > synced_) {
    ++stats_.commits;
    if (commits_total_) commits_total_->inc();
  }
  while (synced_ < target) {
    if (sync_in_flight_) {
      // A leader's fsync is running; it covers every byte written before
      // it captured `up_to`.  Wait and re-check — if our records were
      // appended after the capture we become the next leader.
      sync_done_.wait(mu_);
      continue;
    }
    sync_in_flight_ = true;
    const std::uint64_t up_to = written_;
    const std::uint64_t batch = pending_records_;
    pending_records_ = 0;
    File* file = file_.get();
    mu_.unlock();

    const double ms = file->sync();

    mu_.lock();
    synced_ = up_to;
    sync_in_flight_ = false;
    ++stats_.fsyncs;
    if (fsync_ms_) fsync_ms_->record(ms);
    if (batch_records_) batch_records_->record(static_cast<double>(batch));
    sync_done_.notify_all();
  }
  mu_.unlock();
}

void LogStore::checkpoint(std::vector<std::uint8_t> snapshot) {
  sync::MutexLock lock(mu_);
  // Never swap the file out from under a leader's in-flight fsync.
  while (sync_in_flight_) sync_done_.wait(mu_);

  // Write the replacement log: one checkpoint record, fully durable
  // before the rename makes it the log.
  {
    std::unique_ptr<File> tmp = vfs_.open(tmp_name_);
    tmp->truncate(0);  // stale temp from a previous failed attempt
    tmp->append(frame_record(kRecordCheckpoint, snapshot));
    tmp->sync();
  }
  vfs_.rename(tmp_name_, name_);

  file_ = vfs_.open(name_);
  written_ = file_->size();
  synced_ = written_;
  pending_records_ = 0;
  ++stats_.checkpoints;

  recovered_.snapshot = std::move(snapshot);
  recovered_.deltas.clear();
  sync_done_.notify_all();
}

LogStore::Stats LogStore::stats() const {
  sync::MutexLock lock(mu_);
  return stats_;
}

std::uint64_t LogStore::size_bytes() const {
  sync::MutexLock lock(mu_);
  return written_;
}

}  // namespace p2pcash::store
