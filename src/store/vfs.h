// vfs.h — the store's filesystem seam.
//
// The durable log talks to the world through two tiny interfaces: `File`
// (append / sync / truncate / read) and `Vfs` (open / rename / remove).
// Two implementations:
//
//   PosixVfs — real files: open(O_APPEND-free, explicit offsets), pwrite,
//       fdatasync, ftruncate.  sync() reports its wall-clock latency so
//       the log can feed the fsync histogram.  Used by bench_storage and
//       any real deployment.
//
//   MemVfs — a deterministic in-memory filesystem for the simulator and
//       the crash-point tests.  Each file tracks a *synced prefix*: bytes
//       past it are "in the page cache".  `crash_file(name, keep)`
//       models a process kill at an arbitrary byte — the synced prefix
//       survives, plus the first `keep` unsynced bytes (a torn tail the
//       recovery scan must truncate).  sync() is instantaneous (0 ms) so
//       seeded chaos schedules stay deterministic.
//
// Thread-safety: PosixFile serializes callers externally (the log store
// holds its own mutex across file calls).  MemVfs carries an internal
// leaf mutex (sync::level::kStoreVfs) because the chaos engine's crash
// hooks race against node threads in multithreaded runs.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sync/annotated.h"

namespace p2pcash::store {

/// A writable log file.  Appends go to the end; `sync` makes everything
/// written so far durable and returns the fsync latency in milliseconds
/// (0.0 for in-memory files, keeping simulated time deterministic).
class File {
 public:
  virtual ~File() = default;

  /// Appends `data` at the end of the file.  Throws std::runtime_error on
  /// I/O failure (a failed append poisons the store — see LogStore).
  virtual void append(std::span<const std::uint8_t> data) = 0;

  /// Makes all appended bytes durable.  Returns the latency in ms.
  virtual double sync() = 0;

  /// Truncates the file to `size` bytes (recovery chops torn tails).
  virtual void truncate(std::uint64_t size) = 0;

  virtual std::uint64_t size() const = 0;

  /// Reads the whole file (recovery scans are sequential and logs are
  /// compacted, so whole-file reads are the simple, correct choice).
  virtual std::vector<std::uint8_t> read_all() const = 0;
};

/// Namespace of files.  `rename` must be atomic with respect to crashes
/// (POSIX rename(2) semantics) — compaction relies on it.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens (creating if absent) a file for append + read.
  virtual std::unique_ptr<File> open(const std::string& name) = 0;

  virtual bool exists(const std::string& name) const = 0;

  /// Atomically replaces `to` with `from` (from stops existing).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  virtual void remove(const std::string& name) = 0;
};

// ---------------------------------------------------------------------------
// POSIX implementation
// ---------------------------------------------------------------------------

class PosixVfs : public Vfs {
 public:
  /// Files live under `dir` (created if missing).
  explicit PosixVfs(std::string dir);

  std::unique_ptr<File> open(const std::string& name) override;
  bool exists(const std::string& name) const override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string path_of(const std::string& name) const;
  std::string dir_;
};

// ---------------------------------------------------------------------------
// Deterministic in-memory implementation
// ---------------------------------------------------------------------------

class MemVfs : public Vfs {
 public:
  MemVfs() = default;

  std::unique_ptr<File> open(const std::string& name) override;
  bool exists(const std::string& name) const override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;

  /// Crash model: keeps the synced prefix plus the first
  /// `keep_unsynced_bytes` of the unsynced tail (clamped to the tail
  /// length) and discards the rest — the moral equivalent of the kernel
  /// having written an arbitrary prefix of the page cache before the
  /// process died.  Open handles keep appending to the truncated file,
  /// so callers must reopen (as a restarted process would).
  void crash_file(const std::string& name, std::uint64_t keep_unsynced_bytes);

  /// Bytes currently past the synced prefix (what a crash could tear).
  std::uint64_t unsynced_bytes(const std::string& name) const;

  /// Raw current contents (tests inspect / corrupt log bytes directly).
  std::vector<std::uint8_t> contents(const std::string& name) const;

  /// Overwrites a file's contents wholesale, marking them synced (tests
  /// plant hostile corpora this way).
  void set_contents(const std::string& name, std::vector<std::uint8_t> bytes);

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::uint64_t synced = 0;  // prefix of `bytes` that survives a crash
  };

  class MemFile;
  friend class MemFile;

  mutable sync::Mutex mu_{"store.vfs", sync::level::kStoreVfs};
  std::map<std::string, Entry> files_ P2P_GUARDED_BY(mu_);
};

}  // namespace p2pcash::store
