// table_file.h — immutable, mmap-friendly witness range-table format.
//
// The broker publishes signed witness range tables; every payment looks
// up the coin point's responsible witness.  In memory that is a sorted
// vector; at production scale (millions of range entries, republished on
// rotation) the table should be a file the OS can page in lazily and
// share between processes.  This format is built once, never mutated,
// and readable directly from a raw byte span — no deserialization pass:
//
//   file   := magic "P2PTBL01"
//           | u32 version | i64 published_at | u32 n      (header, BE)
//           | n × (key[20] | u64 offset | u64 len)        (sorted index)
//           | payload blob                                 (concatenated)
//           | u32 crc32c(everything before this field)
//
// Keys are 20-byte big-endian range lower bounds (kRangeBits = 160), so
// memcmp *is* numeric comparison and lookup is a plain binary search over
// fixed-width index slots — O(log n) with at most log2(n) cache misses.
// Offsets are relative to the blob start; payloads are the canonical
// wire encodings of the table entries (opaque to this layer — the store
// knows bytes, ecash::WitnessTable knows entries).
//
// TableFileBuilder assembles the bytes; TableFileView validates and
// searches any byte span; MappedTableFile mmaps a real file read-only
// and exposes a view over the mapping.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace p2pcash::store {

/// Fixed key width: 160-bit range bounds, big-endian (memcmp == numeric).
inline constexpr std::size_t kTableKeyBytes = 20;

using TableKey = std::array<std::uint8_t, kTableKeyBytes>;

class TableFileBuilder {
 public:
  TableFileBuilder(std::uint32_t version, std::int64_t published_at)
      : version_(version), published_at_(published_at) {}

  /// Adds one entry.  `key` is the range lower bound; `payload` the
  /// entry's canonical encoding.  Entries may arrive in any order.
  void add(const TableKey& key, std::span<const std::uint8_t> payload);

  /// Serializes the file (sorts by key).  Duplicate keys are rejected
  /// with std::invalid_argument — ranges partition the key space.
  std::vector<std::uint8_t> build() const;

 private:
  struct Pending {
    TableKey key;
    std::vector<std::uint8_t> payload;
  };
  std::uint32_t version_;
  std::int64_t published_at_;
  std::vector<Pending> entries_;
};

/// Zero-copy reader over table-file bytes (a vector, an mmap, anything).
/// The constructor validates magic, bounds, and the trailing CRC; all
/// accessors after that are bounds-safe by construction.  The underlying
/// bytes must outlive the view.
class TableFileView {
 public:
  /// Throws std::runtime_error on any structural or checksum violation.
  explicit TableFileView(std::span<const std::uint8_t> bytes);

  std::uint32_t version() const { return version_; }
  std::int64_t published_at() const { return published_at_; }
  std::uint32_t entry_count() const { return n_; }

  /// i-th key / payload, in sorted order (i < entry_count()).
  TableKey key(std::uint32_t i) const;
  std::span<const std::uint8_t> payload(std::uint32_t i) const;

  /// Index of the last entry whose key is <= `key` (the candidate range
  /// for a point lookup — the caller checks the range's upper bound);
  /// nullopt when `key` precedes every entry.  O(log n).
  std::optional<std::uint32_t> predecessor(const TableKey& key) const;

 private:
  const std::uint8_t* index_at(std::uint32_t i) const;

  std::span<const std::uint8_t> bytes_;
  std::uint32_t version_ = 0;
  std::int64_t published_at_ = 0;
  std::uint32_t n_ = 0;
  std::size_t index_off_ = 0;
  std::size_t blob_off_ = 0;
  std::size_t blob_len_ = 0;
};

/// Read-only mmap of a table file on a real filesystem.  Movable, not
/// copyable; unmaps on destruction.
class MappedTableFile {
 public:
  /// Maps `path` and validates it.  Throws std::runtime_error on I/O or
  /// format errors.
  explicit MappedTableFile(const std::string& path);
  ~MappedTableFile();
  MappedTableFile(MappedTableFile&& other) noexcept;
  MappedTableFile& operator=(MappedTableFile&&) = delete;
  MappedTableFile(const MappedTableFile&) = delete;
  MappedTableFile& operator=(const MappedTableFile&) = delete;

  const TableFileView& view() const { return *view_; }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::span<const std::uint8_t> bytes_;
  std::optional<TableFileView> view_;  // engaged after a successful map
};

}  // namespace p2pcash::store
