#include "store/table_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "store/crc32c.h"

namespace p2pcash::store {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'P', '2', 'P', 'T',
                                                'B', 'L', '0', '1'};
constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 8 + 4;
constexpr std::size_t kIndexSlotBytes = kTableKeyBytes + 8 + 8;

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64be(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint32_t load_u32be(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t load_u64be(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// TableFileBuilder
// ---------------------------------------------------------------------------

void TableFileBuilder::add(const TableKey& key,
                           std::span<const std::uint8_t> payload) {
  entries_.push_back({key, {payload.begin(), payload.end()}});
}

std::vector<std::uint8_t> TableFileBuilder::build() const {
  std::vector<Pending> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Pending& a, const Pending& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i - 1].key == sorted[i].key)
      throw std::invalid_argument(
          "TableFileBuilder: duplicate range lower bound");

  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32be(out, version_);
  put_u64be(out, static_cast<std::uint64_t>(published_at_));
  put_u32be(out, static_cast<std::uint32_t>(sorted.size()));

  std::uint64_t offset = 0;
  for (const Pending& e : sorted) {
    out.insert(out.end(), e.key.begin(), e.key.end());
    put_u64be(out, offset);
    put_u64be(out, e.payload.size());
    offset += e.payload.size();
  }
  for (const Pending& e : sorted)
    out.insert(out.end(), e.payload.begin(), e.payload.end());

  put_u32be(out, crc32c(out));
  return out;
}

// ---------------------------------------------------------------------------
// TableFileView
// ---------------------------------------------------------------------------

TableFileView::TableFileView(std::span<const std::uint8_t> bytes)
    : bytes_(bytes) {
  auto fail = [](const char* what) {
    throw std::runtime_error(std::string("table file: ") + what);
  };
  if (bytes_.size() < kHeaderBytes + 4) fail("shorter than header");
  if (std::memcmp(bytes_.data(), kMagic.data(), kMagic.size()) != 0)
    fail("bad magic");

  const std::uint32_t stored_crc = load_u32be(&bytes_[bytes_.size() - 4]);
  if (crc32c(bytes_.first(bytes_.size() - 4)) != stored_crc)
    fail("checksum mismatch");

  const std::uint8_t* p = bytes_.data() + kMagic.size();
  version_ = load_u32be(p);
  published_at_ = static_cast<std::int64_t>(load_u64be(p + 4));
  n_ = load_u32be(p + 12);

  index_off_ = kHeaderBytes;
  const std::size_t body = bytes_.size() - kHeaderBytes - 4;
  if (body / kIndexSlotBytes < n_) fail("entry count exceeds file size");
  blob_off_ = index_off_ + static_cast<std::size_t>(n_) * kIndexSlotBytes;
  blob_len_ = bytes_.size() - 4 - blob_off_;

  // Index invariants: sorted strictly ascending, payloads inside the blob.
  TableKey prev{};
  for (std::uint32_t i = 0; i < n_; ++i) {
    const TableKey k = key(i);
    if (i > 0 && !(prev < k)) fail("index keys not strictly ascending");
    prev = k;
    const std::uint8_t* slot = index_at(i);
    const std::uint64_t off = load_u64be(slot + kTableKeyBytes);
    const std::uint64_t len = load_u64be(slot + kTableKeyBytes + 8);
    if (off > blob_len_ || len > blob_len_ - off)
      fail("payload outside blob");
  }
}

const std::uint8_t* TableFileView::index_at(std::uint32_t i) const {
  return bytes_.data() + index_off_ +
         static_cast<std::size_t>(i) * kIndexSlotBytes;
}

TableKey TableFileView::key(std::uint32_t i) const {
  TableKey k;
  std::memcpy(k.data(), index_at(i), kTableKeyBytes);
  return k;
}

std::span<const std::uint8_t> TableFileView::payload(std::uint32_t i) const {
  const std::uint8_t* slot = index_at(i);
  const std::uint64_t off = load_u64be(slot + kTableKeyBytes);
  const std::uint64_t len = load_u64be(slot + kTableKeyBytes + 8);
  return bytes_.subspan(blob_off_ + off, len);
}

std::optional<std::uint32_t> TableFileView::predecessor(
    const TableKey& key) const {
  // Binary search for the last index slot with slot.key <= key.
  std::uint32_t lo = 0, hi = n_;  // [lo, hi): candidates still in play
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(index_at(mid), key.data(), kTableKeyBytes) <= 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo == 0) return std::nullopt;
  return lo - 1;
}

// ---------------------------------------------------------------------------
// MappedTableFile
// ---------------------------------------------------------------------------

MappedTableFile::MappedTableFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::runtime_error("open " + path + ": " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("fstat " + path + ": " + std::strerror(errno));
  }
  map_len_ = static_cast<std::size_t>(st.st_size);
  map_ = ::mmap(nullptr, map_len_ == 0 ? 1 : map_len_, PROT_READ, MAP_PRIVATE,
                fd, 0);
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw std::runtime_error("mmap " + path + ": " + std::strerror(errno));
  }
  bytes_ = {static_cast<const std::uint8_t*>(map_), map_len_};
  try {
    view_.emplace(bytes_);
  } catch (...) {
    ::munmap(map_, map_len_ == 0 ? 1 : map_len_);
    map_ = nullptr;
    throw;
  }
}

MappedTableFile::~MappedTableFile() {
  if (map_ != nullptr) ::munmap(map_, map_len_ == 0 ? 1 : map_len_);
}

MappedTableFile::MappedTableFile(MappedTableFile&& other) noexcept
    : map_(other.map_),
      map_len_(other.map_len_),
      bytes_(other.bytes_),
      view_(std::move(other.view_)) {
  other.map_ = nullptr;
  other.bytes_ = {};
  other.view_.reset();
}

}  // namespace p2pcash::store
