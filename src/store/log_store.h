// log_store.h — append-only CRC-framed record log with group commit.
//
// On-disk format (all integers big-endian, matching wire/codec):
//
//   record  := u32 payload_len | u32 crc32c(payload) | payload
//   payload := u8 kind | body           kind 0 = checkpoint, 1 = delta
//   log     := record*
//
// The frame echoes wire/framing's length-prefixed discipline and its
// oversized-length guard: a length prefix beyond max_record_bytes is
// treated as corruption, not an allocation request.  The recovery scan is
// a resumable decode — it walks records until the first one that does not
// fully verify (short header, short payload, CRC mismatch, bad kind,
// oversized length) and **truncates the file there**: a torn tail is the
// expected result of a crash mid-write, never an error.  Everything
// before the truncation point was covered by a commit() (or was never
// acknowledged), so chopping the tail loses no acknowledged state.
//
// Group commit: append() frames the record and hands it to the file under
// the store mutex (cheap — page-cache write).  commit() is the durability
// barrier: the first committer becomes the *leader*, captures the current
// written offset, releases the mutex, fsyncs once, and wakes everyone
// whose records the captured offset covers.  Committers arriving while a
// sync is in flight wait; whoever wakes with records still unsynced
// becomes the next leader.  N concurrent committers cost ~2 fsyncs worst
// case instead of N.
//
// Compaction (checkpoint()): writes `<name>.tmp` containing a single
// checkpoint record, fsyncs it, then atomically renames it over the log.
// A crash before the rename leaves the old log intact plus a stale .tmp
// (removed on next open); after the rename the new log is complete.
//
// Metrics (optional): store_fsync_ms and store_commit_batch_records
// histograms, store_appends_total / store_commits_total /
// store_truncated_bytes_total counters.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/store.h"
#include "store/vfs.h"
#include "sync/annotated.h"

namespace p2pcash::obs {
class MetricsRegistry;
class Histogram;
class Counter;
}  // namespace p2pcash::obs

namespace p2pcash::store {

/// Record kinds at the log-framing layer.
inline constexpr std::uint8_t kRecordCheckpoint = 0;
inline constexpr std::uint8_t kRecordDelta = 1;

/// Bytes of framing around each payload (length + CRC).
inline constexpr std::size_t kFrameHeaderBytes = 8;

class LogStore : public Store {
 public:
  struct Options {
    /// Upper bound on a single record's payload.  A length prefix above
    /// this is corruption (wire/framing's poison-on-oversized idiom);
    /// generous because checkpoints carry whole service snapshots.
    std::uint32_t max_record_bytes = 64u << 20;
    /// Metrics sink; nullptr disables instrumentation.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Counters maintained across the store's lifetime (monotonic; the
  /// recovery fields describe the open-time scan).
  struct Stats {
    std::uint64_t appended_records = 0;
    std::uint64_t appended_bytes = 0;
    std::uint64_t commits = 0;   // commit() calls that found work
    std::uint64_t fsyncs = 0;    // actual File::sync calls
    std::uint64_t checkpoints = 0;
    std::uint64_t recovered_records = 0;  // valid records seen on open
    std::uint64_t truncated_bytes = 0;    // torn tail chopped on open
  };

  /// Opens (creating if absent) `<name>` under `vfs`, removing any stale
  /// compaction temp file and truncating a torn tail to the last valid
  /// record.  The Vfs must outlive the store.
  LogStore(Vfs& vfs, std::string name, Options options);
  LogStore(Vfs& vfs, std::string name)
      : LogStore(vfs, std::move(name), Options()) {}

  bool empty() const override;
  void append(std::span<const std::uint8_t> delta) override;
  void commit() override;
  void checkpoint(std::vector<std::uint8_t> snapshot) override;
  Recovered recover() override;

  Stats stats() const;

  /// Current log size in bytes (compaction policy input).
  std::uint64_t size_bytes() const;

  const std::string& name() const { return name_; }

  /// Frames one payload exactly as the log writes it (tests build hostile
  /// corpora from real frames).
  static std::vector<std::uint8_t> frame_record(
      std::uint8_t kind, std::span<const std::uint8_t> body);

 private:
  void open_and_scan();
  void append_framed(std::uint8_t kind, std::span<const std::uint8_t> body)
      P2P_REQUIRES(mu_);

  Vfs& vfs_;
  const std::string name_;
  const std::string tmp_name_;
  const Options options_;

  mutable sync::Mutex mu_{"store.log", sync::level::kStore};
  sync::CondVar sync_done_;
  std::unique_ptr<File> file_ P2P_GUARDED_BY(mu_);
  std::uint64_t written_ P2P_GUARDED_BY(mu_) = 0;  // file size incl. unsynced
  std::uint64_t synced_ P2P_GUARDED_BY(mu_) = 0;   // durable prefix
  std::uint64_t pending_records_ P2P_GUARDED_BY(mu_) = 0;
  bool sync_in_flight_ P2P_GUARDED_BY(mu_) = false;
  Stats stats_ P2P_GUARDED_BY(mu_);

  /// Open-time scan result, consumed by recover().
  Recovered recovered_ P2P_GUARDED_BY(mu_);

  // Instrument pointers resolved once at construction (registry refs are
  // stable); nullptr when Options::metrics is unset.
  obs::Histogram* fsync_ms_ = nullptr;
  obs::Histogram* batch_records_ = nullptr;
  obs::Counter* appends_total_ = nullptr;
  obs::Counter* commits_total_ = nullptr;
  obs::Counter* truncated_total_ = nullptr;
};

}  // namespace p2pcash::store
