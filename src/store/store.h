// store.h — the durable-state seam for Broker and WitnessService.
//
// Both services keep their coin/deposit/double-spend state in memory and
// persist it through this interface as
//
//   * **checkpoints** — a full canonical snapshot (the same bytes as
//     snapshot_state()), written on attach and by compaction; and
//   * **deltas** — small typed records appended by every mutating entry
//     point *before* the operation is acknowledged, then made durable by
//     commit().
//
// Recovery = restore the last checkpoint, then re-apply the deltas after
// it in append order (each service's apply_delta is last-wins per key, so
// replay is idempotent).  The contract the crash-point matrix enforces:
// **a record covered by a returned commit() is never lost**, and a torn
// tail past the last commit is truncated silently — the service simply
// never acknowledged those operations.
//
// Two implementations:
//   SnapshotStore — in-memory (no durability): the legacy synchronous-WAL
//       behavior behind the same seam, used by the deterministic suites
//       (which must stay byte-identical) and the golden equivalence test.
//   LogStore (log_store.h) — the real append-only CRC-framed log.

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sync/annotated.h"

namespace p2pcash::store {

/// What a store hands back on open: the newest checkpoint (empty when the
/// store has never been checkpointed) and every delta appended after it,
/// in append order.
struct Recovered {
  std::vector<std::uint8_t> snapshot;
  std::vector<std::vector<std::uint8_t>> deltas;
};

class Store {
 public:
  virtual ~Store() = default;

  /// True when nothing has ever been written (services write a genesis
  /// checkpoint so the signing key itself is durable).
  virtual bool empty() const = 0;

  /// Appends one delta record.  Cheap and non-durable until commit().
  /// Thread-safe: services append while holding their own service/stripe
  /// lock (sync::level::kStore sits below kService and kShard).
  virtual void append(std::span<const std::uint8_t> delta) = 0;

  /// Makes every previously appended delta durable.  Returning means the
  /// records survive any subsequent crash.  Thread-safe; concurrent
  /// committers are batched into one fsync (group commit).
  virtual void commit() = 0;

  /// Replaces the log with a single checkpoint record (compaction).
  /// Durable on return.
  virtual void checkpoint(std::vector<std::uint8_t> snapshot) = 0;

  /// Scans the store: newest checkpoint + deltas after it.  Called once
  /// at attach time, before any append.
  virtual Recovered recover() = 0;
};

/// RAII commit barrier for service entry points.  Declared *before* the
/// service MutexLock, so the destructor — running after the lock is
/// released — makes every delta journaled inside the critical section
/// durable before the entry point returns its acknowledgement to the
/// caller.  Null store → no-op (the undurable legacy configuration).
class StoreCommit {
 public:
  explicit StoreCommit(Store* store) : store_(store) {}
  ~StoreCommit() {
    if (store_ != nullptr) store_->commit();
  }
  StoreCommit(const StoreCommit&) = delete;
  StoreCommit& operator=(const StoreCommit&) = delete;

 private:
  Store* store_;
};

/// In-memory store: remembers the latest checkpoint and the deltas after
/// it, exactly like the log store minus the file.  commit() is a no-op —
/// this models the legacy crash hook (snapshot survives "crashes" because
/// the test harness holds the bytes), and it keeps the deterministic
/// suites unchanged while exercising the identical journaling code path.
class SnapshotStore : public Store {
 public:
  bool empty() const override {
    sync::MutexLock lock(mu_);
    return snapshot_.empty() && deltas_.empty() && !checkpointed_;
  }
  void append(std::span<const std::uint8_t> delta) override {
    sync::MutexLock lock(mu_);
    deltas_.emplace_back(delta.begin(), delta.end());
  }
  void commit() override {}
  void checkpoint(std::vector<std::uint8_t> snapshot) override {
    sync::MutexLock lock(mu_);
    snapshot_ = std::move(snapshot);
    deltas_.clear();
    checkpointed_ = true;
  }
  Recovered recover() override {
    sync::MutexLock lock(mu_);
    return {snapshot_, deltas_};
  }

  /// Number of deltas since the last checkpoint (tests watch journaling).
  std::size_t delta_count() const {
    sync::MutexLock lock(mu_);
    return deltas_.size();
  }

 private:
  mutable sync::Mutex mu_{"store.log", sync::level::kStore};
  std::vector<std::uint8_t> snapshot_ P2P_GUARDED_BY(mu_);
  std::vector<std::vector<std::uint8_t>> deltas_ P2P_GUARDED_BY(mu_);
  bool checkpointed_ P2P_GUARDED_BY(mu_) = false;
};

}  // namespace p2pcash::store
