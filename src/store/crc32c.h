// crc32c.h — CRC-32C (Castagnoli) for log-record framing.
//
// Every record in the durable log carries a CRC-32C of its payload so a
// torn write, bit rot, or a garbage tail is detected on open and the log
// truncated back to the last valid record.  Castagnoli (polynomial
// 0x1EDC6F41, reflected 0x82F63B78) is the storage-industry default
// (ext4, btrfs, LevelDB/RocksDB, iSCSI) with better error-detection
// properties than CRC-32/zlib at the record sizes we frame.
//
// Table-driven, byte-at-a-time: this is framing integrity, not a hot
// path — the log's throughput is bounded by fsync, not checksumming.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace p2pcash::store {

/// CRC-32C of `data`, optionally chained from a previous value via `seed`
/// (pass the previous crc32c() result to extend it across buffers).
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

}  // namespace p2pcash::store
