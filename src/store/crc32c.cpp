#include "store/crc32c.h"

#include <array>

namespace p2pcash::store {
namespace {

// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data)
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  return ~crc;
}

}  // namespace p2pcash::store
