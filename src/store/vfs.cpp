#include "store/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace p2pcash::store {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// PosixVfs
// ---------------------------------------------------------------------------

namespace {

class PosixFile : public File {
 public:
  explicit PosixFile(const std::string& path) : path_(path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) throw_errno("open " + path);
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat " + path);
    size_ = static_cast<std::uint64_t>(st.st_size);
  }

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(std::span<const std::uint8_t> data) override {
    std::size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + off, data.size() - off,
                           static_cast<off_t>(size_ + off));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwrite " + path_);
      }
      off += static_cast<std::size_t>(n);
    }
    size_ += data.size();
  }

  double sync() override {
    const auto t0 = std::chrono::steady_clock::now();
    if (::fdatasync(fd_) != 0) throw_errno("fdatasync " + path_);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  }

  void truncate(std::uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
      throw_errno("ftruncate " + path_);
    size_ = size;
  }

  std::uint64_t size() const override { return size_; }

  std::vector<std::uint8_t> read_all() const override {
    std::vector<std::uint8_t> out(size_);
    std::size_t off = 0;
    while (off < out.size()) {
      ssize_t n = ::pread(fd_, out.data() + off, out.size() - off,
                          static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pread " + path_);
      }
      if (n == 0) break;  // shorter than expected: racing truncate
      off += static_cast<std::size_t>(n);
    }
    out.resize(off);
    return out;
  }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace

PosixVfs::PosixVfs(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
    throw_errno("mkdir " + dir_);
}

std::string PosixVfs::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

std::unique_ptr<File> PosixVfs::open(const std::string& name) {
  return std::make_unique<PosixFile>(path_of(name));
}

bool PosixVfs::exists(const std::string& name) const {
  struct stat st{};
  return ::stat(path_of(name).c_str(), &st) == 0;
}

void PosixVfs::rename(const std::string& from, const std::string& to) {
  if (::rename(path_of(from).c_str(), path_of(to).c_str()) != 0)
    throw_errno("rename " + path_of(from));
}

void PosixVfs::remove(const std::string& name) {
  if (::unlink(path_of(name).c_str()) != 0 && errno != ENOENT)
    throw_errno("unlink " + path_of(name));
}

// ---------------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------------

/// Handle into a MemVfs entry.  Looks the entry up by name on every call:
/// rename/crash/remove invalidate nothing, matching how a real fd keeps
/// working while the directory entry changes underneath it closely enough
/// for the recovery tests (which always reopen after a crash anyway).
class MemVfs::MemFile : public File {
 public:
  MemFile(MemVfs* vfs, std::string name) : vfs_(vfs), name_(std::move(name)) {}

  void append(std::span<const std::uint8_t> data) override {
    sync::MutexLock lock(vfs_->mu_);
    auto& e = vfs_->files_[name_];
    e.bytes.insert(e.bytes.end(), data.begin(), data.end());
  }

  double sync() override {
    sync::MutexLock lock(vfs_->mu_);
    auto& e = vfs_->files_[name_];
    e.synced = e.bytes.size();
    return 0.0;  // simulated fsync is free: chaos schedules stay seeded
  }

  void truncate(std::uint64_t size) override {
    sync::MutexLock lock(vfs_->mu_);
    auto& e = vfs_->files_[name_];
    if (size < e.bytes.size()) e.bytes.resize(size);
    if (e.synced > e.bytes.size()) e.synced = e.bytes.size();
  }

  std::uint64_t size() const override {
    sync::MutexLock lock(vfs_->mu_);
    auto it = vfs_->files_.find(name_);
    return it == vfs_->files_.end() ? 0 : it->second.bytes.size();
  }

  std::vector<std::uint8_t> read_all() const override {
    sync::MutexLock lock(vfs_->mu_);
    auto it = vfs_->files_.find(name_);
    return it == vfs_->files_.end() ? std::vector<std::uint8_t>{}
                                    : it->second.bytes;
  }

 private:
  MemVfs* vfs_;
  std::string name_;
};

std::unique_ptr<File> MemVfs::open(const std::string& name) {
  {
    sync::MutexLock lock(mu_);
    files_.try_emplace(name);
  }
  return std::make_unique<MemFile>(this, name);
}

bool MemVfs::exists(const std::string& name) const {
  sync::MutexLock lock(mu_);
  return files_.count(name) != 0;
}

void MemVfs::rename(const std::string& from, const std::string& to) {
  sync::MutexLock lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end())
    throw std::runtime_error("MemVfs::rename: no such file: " + from);
  Entry e = std::move(it->second);
  files_.erase(it);
  // A crash-atomic rename lands fully synced, like rename(2) after fsync.
  e.synced = e.bytes.size();
  files_[to] = std::move(e);
}

void MemVfs::remove(const std::string& name) {
  sync::MutexLock lock(mu_);
  files_.erase(name);
}

void MemVfs::crash_file(const std::string& name,
                        std::uint64_t keep_unsynced_bytes) {
  sync::MutexLock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return;
  Entry& e = it->second;
  const std::uint64_t tail = e.bytes.size() - e.synced;
  const std::uint64_t keep = std::min(keep_unsynced_bytes, tail);
  e.bytes.resize(e.synced + keep);
  // The surviving torn tail is on disk now — it is what reopen sees.
  e.synced = e.bytes.size();
}

std::uint64_t MemVfs::unsynced_bytes(const std::string& name) const {
  sync::MutexLock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return 0;
  return it->second.bytes.size() - it->second.synced;
}

std::vector<std::uint8_t> MemVfs::contents(const std::string& name) const {
  sync::MutexLock lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? std::vector<std::uint8_t>{} : it->second.bytes;
}

void MemVfs::set_contents(const std::string& name,
                          std::vector<std::uint8_t> bytes) {
  sync::MutexLock lock(mu_);
  Entry& e = files_[name];
  e.bytes = std::move(bytes);
  e.synced = e.bytes.size();
}

}  // namespace p2pcash::store
