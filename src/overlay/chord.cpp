#include "overlay/chord.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace p2pcash::overlay {

using bn::BigInt;

bool in_interval_oc(const ChordId& x, const ChordId& from, const ChordId& to) {
  if (from < to) return from < x && x <= to;
  // Wrapped interval (from >= to): (from, 2^160) ∪ [0, to].
  return x > from || x <= to;
}

ChordId ring_distance(const ChordId& from, const ChordId& to) {
  if (from <= to) return to - from;
  return (BigInt{1} << kIdBits) - from + to;
}

std::vector<std::size_t> failover_order(
    const ChordId& key, const std::vector<ChordId>& candidates) {
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ring_distance(key, candidates[a]) <
                            ring_distance(key, candidates[b]);
                   });
  return order;
}

ChordRing::ChordRing(std::size_t n_nodes, bn::Rng& rng) {
  if (n_nodes == 0) throw std::invalid_argument("ChordRing: empty ring");
  std::set<BigInt> ids;
  while (ids.size() < n_nodes) ids.insert(bn::random_bits(rng, kIdBits));
  nodes_.assign(ids.begin(), ids.end());

  // Finger tables: finger[i] = successor(node + 2^i mod 2^160).
  const BigInt space = BigInt{1} << kIdBits;
  fingers_.resize(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    fingers_[n].resize(kIdBits);
    for (std::size_t i = 0; i < kIdBits; ++i) {
      BigInt target = nodes_[n] + (BigInt{1} << i);
      if (target >= space) target -= space;
      fingers_[n][i] = successor_index(target);
    }
  }
}

std::size_t ChordRing::successor_index(const ChordId& key) const {
  // First node id >= key, wrapping to node 0.
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), key);
  if (it == nodes_.end()) return 0;
  return static_cast<std::size_t>(it - nodes_.begin());
}

std::vector<std::size_t> ChordRing::replica_set(const ChordId& key,
                                                std::size_t count) const {
  // Clamp before walking: with count >= nodes_.size() the (idx + i) walk
  // would wrap all the way around and hand out duplicate replica indices.
  count = std::min(count, nodes_.size());
  std::vector<std::size_t> out;
  out.reserve(count);
  std::size_t idx = successor_index(key);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back((idx + i) % nodes_.size());
  return out;
}

std::size_t ChordRing::finger(std::size_t node, std::size_t i) const {
  return fingers_.at(node).at(i);
}

std::vector<std::size_t> ChordRing::route(std::size_t start,
                                          const ChordId& key) const {
  const std::size_t target = successor_index(key);
  std::vector<std::size_t> path{start};
  std::size_t current = start;
  // Iterative closest-preceding-finger routing.
  while (current != target) {
    // If the target is our immediate successor region, jump there.
    if (in_interval_oc(key, nodes_[current],
                       nodes_[(current + 1) % nodes_.size()]) ||
        (current + 1) % nodes_.size() == target) {
      current = target;
      path.push_back(current);
      break;
    }
    // Closest finger preceding the key.
    std::size_t next = current;
    for (std::size_t i = kIdBits; i-- > 0;) {
      std::size_t f = fingers_[current][i];
      if (f != current && in_interval_oc(nodes_[f], nodes_[current], key)) {
        next = f;
        break;
      }
    }
    if (next == current) {
      // No finger strictly progresses: fall back to the successor.
      next = (current + 1) % nodes_.size();
    }
    current = next;
    path.push_back(current);
    if (path.size() > nodes_.size() + 2)
      throw std::logic_error("ChordRing::route: routing loop");
  }
  return path;
}

}  // namespace p2pcash::overlay
