// chord.h — a Chord ring (Stoica et al., SIGCOMM 2001).
//
// The paper's related work (§2) contrasts its witness scheme with
// DHT-based spent-coin databases (WhoPay, Hoepman): "the distributed
// database cannot be fully trusted unless secure routing and honesty of
// peers are guaranteed and can only support probabilistic guarantees."
// To make that comparison quantitative (bench A2) we implement the Chord
// substrate those schemes assume: 160-bit identifier ring, finger tables,
// iterative greedy routing, successor-list replication.
//
// This is a structural simulation: finger tables are computed from the
// (static) membership, and lookups return the true route a Chord iterative
// lookup would take, including per-hop traversal so faulty/adversarial
// nodes can interfere with routing.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bn/bigint.h"
#include "bn/rng.h"

namespace p2pcash::overlay {

/// Chord identifier: a point on the 2^160 ring.
using ChordId = bn::BigInt;

inline constexpr std::size_t kIdBits = 160;

/// True iff `x` lies in the half-open ring interval (from, to].
bool in_interval_oc(const ChordId& x, const ChordId& from, const ChordId& to);

/// Clockwise ring distance from `from` to `to` in the 2^160 space.
ChordId ring_distance(const ChordId& from, const ChordId& to);

/// Indices of `candidates` ordered by clockwise ring distance from `key` —
/// the order a Chord successor-list lookup would try replicas in.  Used by
/// the resilient payment pipeline to pick which of a coin's witnesses to
/// engage first and where to fail over when one stays silent; ties (equal
/// points) keep input order.
std::vector<std::size_t> failover_order(const ChordId& key,
                                        const std::vector<ChordId>& candidates);

/// A Chord ring over a static membership.
class ChordRing {
 public:
  /// Node ids are derived uniformly (hash of index + seed); distinct.
  ChordRing(std::size_t n_nodes, bn::Rng& rng);

  std::size_t size() const { return nodes_.size(); }
  /// Ring-ordered node ids.
  const std::vector<ChordId>& node_ids() const { return nodes_; }
  /// Index (into node_ids) of the successor node of `key`.
  std::size_t successor_index(const ChordId& key) const;

  /// The `count` successive nodes responsible for `key` (successor list) —
  /// the replica set for DHT storage.
  std::vector<std::size_t> replica_set(const ChordId& key,
                                       std::size_t count) const;

  /// The iterative finger-table route from `start` (node index) towards
  /// the successor of `key`, including the final node. Hop count is
  /// route.size() - 1; O(log n) with high probability.
  std::vector<std::size_t> route(std::size_t start, const ChordId& key) const;

  /// finger[i] of a node: successor(node_id + 2^i).
  std::size_t finger(std::size_t node, std::size_t i) const;

 private:
  std::vector<ChordId> nodes_;                   // sorted ascending
  std::vector<std::vector<std::size_t>> fingers_;  // per node, kIdBits entries
};

}  // namespace p2pcash::overlay
