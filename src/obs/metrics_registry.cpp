#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "metrics/counters.h"
#include "obs/json_writer.h"

namespace p2pcash::obs {

namespace {

/// Fixed double formatting shared by both dumps (byte-determinism).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucket_index(double value_ms) {
  if (!(value_ms > 1.0)) return 0;  // <= 1 ms, zero, negative, NaN
  // Anything past the last finite boundary (including +Inf, whose log2
  // would overflow the int cast below) lands in the overflow bucket.
  if (value_ms > bucket_upper(kBuckets - 2)) return kBuckets - 1;
  // Bucket i covers (2^(i-1), 2^i]: i = ceil(log2(v)) for v > 1.
  const int exp2_ceil =
      static_cast<int>(std::ceil(std::log2(value_ms) - 1e-12));
  const std::size_t idx = exp2_ceil < 1 ? 1 : static_cast<std::size_t>(exp2_ceil);
  return std::min(idx, kBuckets - 1);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void Histogram::record(double value_ms) {
  sync::MutexLock lock(mu_);
  ++buckets_[bucket_index(value_ms)];
  if (count_ == 0) {
    min_ = value_ms;
    max_ = value_ms;
  } else {
    min_ = std::min(min_, value_ms);
    max_ = std::max(max_, value_ms);
  }
  ++count_;
  sum_ += value_ms;
}

double Histogram::percentile(double pct) const {
  sync::MutexLock lock(mu_);
  return percentile_locked(pct);
}

double Histogram::percentile_locked(double pct) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(count_);
  const double observed_min = min_;
  const double observed_max = max_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Linear interpolation inside bucket i between its bounds; the
    // overflow bucket has no finite upper bound, so report the observed
    // max for any rank landing there.
    if (i + 1 >= kBuckets) return max_;
    const double lower = i == 0 ? 0.0 : bucket_upper(i - 1);
    const double upper = bucket_upper(i);
    const double frac =
        (rank - before) / static_cast<double>(buckets_[i]);
    const double estimate = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(estimate, observed_min, observed_max);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  sync::SharedLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  sync::SharedLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  sync::SharedLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  sync::SharedLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::vector<Sample> MetricsRegistry::collect() const {
  std::vector<Sample> samples;
  for (const auto& fn : collectors_) {
    auto batch = fn();
    samples.insert(samples.end(), batch.begin(), batch.end());
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.name < b.name;
                   });
  return samples;
}

std::string MetricsRegistry::prometheus_text() const {
  sync::SharedLock lock(mu_);
  std::string out;
  auto line = [&out](const std::string& name, const std::string& value) {
    out += name;
    out += ' ';
    out += value;
    out += '\n';
  };
  auto type_line = [&out](const std::string& name, const char* type) {
    out += "# TYPE " + name + ' ' + type + '\n';
  };

  for (const auto& [name, counter] : counters_) {
    const std::string pname = sanitize(name);
    type_line(pname, "counter");
    line(pname, std::to_string(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string pname = sanitize(name);
    type_line(pname, "gauge");
    line(pname, fmt(gauge.value()));
  }
  for (const Sample& s : collect()) {
    const std::string pname = sanitize(s.name);
    type_line(pname, s.type == Sample::Type::kCounter ? "counter" : "gauge");
    line(pname, fmt(s.value));
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string pname = sanitize(name);
    type_line(pname, "histogram");
    const auto buckets = hist.buckets();  // one consistent snapshot
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += buckets[i];
      if (buckets[i] == 0 && i + 1 < Histogram::kBuckets) continue;
      const double upper = Histogram::bucket_upper(i);
      const std::string le =
          std::isinf(upper) ? std::string("+Inf") : fmt(upper);
      line(pname + "_bucket{le=\"" + le + "\"}", std::to_string(cumulative));
    }
    line(pname + "_sum", fmt(hist.sum()));
    line(pname + "_count", std::to_string(hist.count()));
    // Summary gauges: the p50/p95/p99 the phase-latency accounting exists
    // for, precomputed so a text diff shows regressions directly.
    line(pname + "_p50", fmt(hist.percentile(50)));
    line(pname + "_p95", fmt(hist.percentile(95)));
    line(pname + "_p99", fmt(hist.percentile(99)));
  }
  return out;
}

std::string MetricsRegistry::json_text() const {
  sync::SharedLock lock(mu_);
  JsonWriter json;
  json.field("bench", std::string("metrics"))
      .field("schema_version", 1);
  json.begin_object("counters");
  for (const auto& [name, counter] : counters_)
    json.field(name, counter.value());
  json.end_object();
  json.begin_object("gauges");
  for (const auto& [name, gauge] : gauges_) json.field(name, gauge.value());
  json.end_object();
  json.begin_object("collected");
  for (const Sample& s : collect()) json.field(s.name, s.value);
  json.end_object();
  json.begin_object("histograms");
  for (const auto& [name, hist] : histograms_) {
    json.begin_object(name)
        .field("count", hist.count())
        .field("sum_ms", hist.sum())
        .field("min_ms", hist.min())
        .field("max_ms", hist.max())
        .field("mean_ms", hist.mean())
        .field("p50_ms", hist.percentile(50))
        .field("p95_ms", hist.percentile(95))
        .field("p99_ms", hist.percentile(99));
    const auto snapshot = hist.buckets();
    std::vector<std::uint64_t> buckets(snapshot.begin(), snapshot.end());
    json.array_u64("log2_buckets", buckets).end_object();
  }
  json.end_object();
  return json.finish();
}

// ---------------------------------------------------------------------------
// Adapters for the pre-existing counter structs
// ---------------------------------------------------------------------------

std::vector<Sample> op_counter_samples(const std::string& prefix,
                                       const metrics::OpCounters& ops) {
  auto sample = [&prefix](const char* name, std::uint64_t v) {
    return Sample{prefix + "_ops_" + name + "_total",
                  static_cast<double>(v), Sample::Type::kCounter};
  };
  return {sample("exp", ops.exp), sample("hash", ops.hash),
          sample("sig", ops.sig), sample("ver", ops.ver)};
}

std::vector<Sample> resilience_samples(
    const std::string& prefix, const metrics::ResilienceCounters& rc) {
  auto sample = [&prefix](const char* name, std::uint64_t v) {
    return Sample{prefix + "_" + name + "_total", static_cast<double>(v),
                  Sample::Type::kCounter};
  };
  return {sample("retries", rc.retries),
          sample("failovers", rc.failovers),
          sample("duplicates_suppressed", rc.duplicates_suppressed),
          sample("breaker_trips", rc.breaker_trips),
          sample("timeouts", rc.timeouts),
          sample("late_replies_ignored", rc.late_replies_ignored)};
}

}  // namespace p2pcash::obs
