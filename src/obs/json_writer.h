// json_writer.h — minimal ordered-key JSON emitter.
//
// Shared by the bench baselines (BENCH_*.json) and the observability
// exports (METRICS_*.json): one serializer so every machine-readable
// artifact this repo writes has the same shape and escaping rules.  Keys
// are emitted in insertion order so diffs between runs stay readable, and
// doubles are formatted with a fixed "%.6g" (non-finite values as null —
// bare inf/nan tokens are not JSON) so the same run always produces
// byte-identical output (a property the trace layer's replay-determinism
// check relies on).

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace p2pcash::obs {

/// Ordered-key JSON emitter.  Supports exactly what the bench baselines
/// and metrics exports need: nested objects, flat arrays, string/number
/// fields.
class JsonWriter {
 public:
  JsonWriter() { open_scope('{'); }

  JsonWriter& field(const std::string& key, const std::string& value) {
    emit_key(key);
    emit_string(value);
    return *this;
  }

  JsonWriter& field(const std::string& key, double value) {
    emit_key(key);
    emit_double(value);
    return *this;
  }

  JsonWriter& field(const std::string& key, std::uint64_t value) {
    emit_key(key);
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& field(const std::string& key, int value) {
    emit_key(key);
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& begin_object(const std::string& key) {
    emit_key(key);
    open_scope('{');
    return *this;
  }

  JsonWriter& end_object() {
    indent_.resize(indent_.size() - 2);
    out_ += '\n';
    out_ += indent_;
    out_ += '}';
    comma_.pop_back();
    return *this;
  }

  /// Flat array of numbers, emitted on one line: "key": [1, 2, 3].
  JsonWriter& array_u64(const std::string& key,
                        const std::vector<std::uint64_t>& values) {
    emit_key(key);
    out_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_ += ", ";
      out_ += std::to_string(values[i]);
    }
    out_ += ']';
    return *this;
  }

  /// Flat array of doubles, emitted on one line.
  JsonWriter& array_double(const std::string& key,
                           const std::vector<double>& values) {
    emit_key(key);
    out_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_ += ", ";
      emit_double(values[i]);
    }
    out_ += ']';
    return *this;
  }

  /// Closes the root object and returns the document.  The writer is
  /// spent afterwards.
  std::string finish() {
    while (!comma_.empty()) end_object();
    out_ += '\n';
    return std::move(out_);
  }

  /// Writes `finish()` to `path`; returns false (and prints) on failure.
  bool write_file(const std::string& path) {
    std::string doc = finish();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "json: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("  wrote %s (%zu bytes)\n", path.c_str(), doc.size());
    return true;
  }

 private:
  void open_scope(char brace) {
    out_ += brace;
    comma_.push_back(false);
    indent_ += "  ";
  }

  void emit_key(const std::string& key) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
    out_ += '\n';
    out_ += indent_;
    out_ += '"';
    escape_into(key);
    out_ += "\": ";
  }

  void emit_string(const std::string& value) {
    out_ += '"';
    escape_into(value);
    out_ += '"';
  }

  void emit_double(double value) {
    // "%.6g" renders non-finite doubles as bare `inf` / `nan` tokens,
    // which is not JSON (an empty histogram's min is +inf, a 0/0 rate is
    // NaN) — emit `null` so every artifact stays machine-parseable.
    if (!std::isfinite(value)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += buf;
  }

  void escape_into(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += c;
      }
    }
  }

  std::string out_;
  std::string indent_;
  std::vector<bool> comma_;
};

}  // namespace p2pcash::obs
