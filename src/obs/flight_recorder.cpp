#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

#include "sync/lock_order.h"

namespace p2pcash::obs {

namespace {

/// Truncating copy into a fixed char field, always NUL-terminated.
template <std::size_t N>
void copy_field(char (&dst)[N], std::string_view src) {
  const std::size_t n = src.size() < N - 1 ? src.size() : N - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Formats one dump line into `buf`.  snprintf is not on the POSIX
/// async-signal-safe list but is reentrant and allocation-free in
/// practice on glibc/musl for numeric/string conversions; the dump path
/// accepts that pragmatic bar (the alternative is a hand-rolled
/// formatter for marginal benefit in a crashing process).
int format_entry(char* buf, std::size_t cap, const FlightRecorder::Entry& e,
                 bool torn) {
  return std::snprintf(buf, cap, "%14.3f  #%llu  %-22s %s%s\n", e.t_ms,
                       static_cast<unsigned long long>(e.seq), e.name,
                       e.detail, torn ? "  [torn]" : "");
}

void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) return;  // best effort — we may be inside a signal handler
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::function<double()> clock)
    : clock_(std::move(clock)), ring_(capacity < 8 ? 8 : capacity) {}

void FlightRecorder::record(std::string_view name, std::string_view detail) {
  const std::uint64_t idx = seq_.fetch_add(1, std::memory_order_relaxed);
  Entry& slot = ring_[idx % ring_.size()];
  slot.seq = 0;  // invalidate while we overwrite (readers skip seq==0)
  slot.t_ms = clock_ ? clock_() : 0;
  copy_field(slot.name, name);
  copy_field(slot.detail, detail);
  slot.seq = idx + 1;  // publish last; a racing reader sees 0 or idx+1
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  const std::uint64_t total = seq_.load(std::memory_order_relaxed);
  const std::uint64_t cap = ring_.size();
  const std::uint64_t start = total > cap ? total - cap : 0;
  std::vector<Entry> out;
  out.reserve(static_cast<std::size_t>(total - start));
  for (std::uint64_t i = start; i < total; ++i) {
    const Entry e = ring_[i % cap];  // racy copy by design (see header)
    if (e.seq != i + 1) continue;    // torn or mid-overwrite: skip
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::dump_to_string() const {
  const std::uint64_t total = seq_.load(std::memory_order_relaxed);
  std::string out = "# flight recorder: " + std::to_string(total) +
                    " recorded, capacity " + std::to_string(ring_.size()) +
                    "\n";
  char line[256];
  const std::uint64_t cap = ring_.size();
  const std::uint64_t start = total > cap ? total - cap : 0;
  for (std::uint64_t i = start; i < total; ++i) {
    const Entry e = ring_[i % cap];
    const bool torn = e.seq != i + 1;
    if (torn && e.seq == 0) continue;  // slot mid-write: nothing to show
    const int n = format_entry(line, sizeof line, e, torn);
    if (n > 0) out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

void FlightRecorder::set_artifact_path(std::string_view path) {
  const std::size_t n =
      path.size() < sizeof(artifact_path_) - 1 ? path.size()
                                               : sizeof(artifact_path_) - 1;
  std::memcpy(artifact_path_, path.data(), n);
  artifact_path_[n] = '\0';
  artifact_len_.store(n, std::memory_order_release);
}

std::string FlightRecorder::artifact_path() const {
  const std::size_t n = artifact_len_.load(std::memory_order_acquire);
  return std::string(artifact_path_, n);
}

void FlightRecorder::dump(const char* reason) const {
  // Everything below is stack buffers + raw syscalls: callable from the
  // SIGABRT handler of a thread that just failed an assert while holding
  // arbitrary locks.
  int fd = STDERR_FILENO;
  int opened = -1;
  if (artifact_len_.load(std::memory_order_acquire) > 0) {
    opened = ::open(artifact_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (opened >= 0) fd = opened;
  }

  char header[256];
  const std::uint64_t total = seq_.load(std::memory_order_relaxed);
  int n = std::snprintf(header, sizeof header,
                        "# flight recorder dump (reason=%s, recorded=%llu, "
                        "capacity=%zu)\n",
                        reason ? reason : "?",
                        static_cast<unsigned long long>(total), ring_.size());
  if (n > 0) write_all(fd, header, static_cast<std::size_t>(n));

  char line[256];
  const std::uint64_t cap = ring_.size();
  const std::uint64_t start = total > cap ? total - cap : 0;
  for (std::uint64_t i = start; i < total; ++i) {
    const Entry& e = ring_[i % cap];
    const bool torn = e.seq != i + 1;
    if (torn && e.seq == 0) continue;
    n = format_entry(line, sizeof line, e, torn);
    if (n > 0) write_all(fd, line, static_cast<std::size_t>(n));
  }

  if (opened >= 0) {
    ::close(opened);
    // Leave a pointer on stderr so a CI log names the artifact.
    n = std::snprintf(header, sizeof header,
                      "flight recorder: dumped %llu entries to %s (%s)\n",
                      static_cast<unsigned long long>(total > cap ? cap
                                                                  : total),
                      artifact_path_, reason ? reason : "?");
    if (n > 0) write_all(STDERR_FILENO, header, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Process hooks
// ---------------------------------------------------------------------------

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

void on_sigusr1(int) {
  if (FlightRecorder* r = g_recorder.load(std::memory_order_acquire))
    r->dump("sigusr1");
}

void on_sigabrt(int) {
  if (FlightRecorder* r = g_recorder.load(std::memory_order_acquire))
    r->dump("abort");
  // Restore the default disposition and re-raise so the process still
  // terminates abnormally (core dump / nonzero exit for the harness).
  std::signal(SIGABRT, SIG_DFL);
  std::raise(SIGABRT);
}

}  // namespace

void FlightRecorder::install_process_hooks(FlightRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
  if (recorder) {
    std::signal(SIGUSR1, on_sigusr1);
    std::signal(SIGABRT, on_sigabrt);
    // Lock-order violations: breadcrumb + abort.  The dump itself happens
    // in the SIGABRT hook just installed, so it fires exactly once.
    sync::lock_order::set_violation_handler(
        [recorder](const sync::lock_order::Violation& v) {
          recorder->record("lock_order.violation",
                           v.acquiring + " while holding " + v.held);
          std::fprintf(stderr, "%s\n", v.detail.c_str());
          std::abort();
        });
  } else {
    std::signal(SIGUSR1, SIG_DFL);
    std::signal(SIGABRT, SIG_DFL);
    sync::lock_order::set_violation_handler(nullptr);
  }
}

}  // namespace p2pcash::obs
