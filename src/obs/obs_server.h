// obs_server.h — minimal HTTP/1.0 scrape endpoint for a live node.
//
// Serves three read-only views of a running NodeRuntime (or any host that
// wires up the sources):
//
//   GET /metrics       deterministic Prometheus text (MetricsRegistry)
//   GET /metrics.json  the same registry as JSON
//   GET /healthz       "ok\n" (200) or "unhealthy\n" (503)
//   GET /tracez        recent spans/events as JSONL (TraceSink)
//   GET /flightz       flight-recorder breadcrumbs as text
//
// Scope: loopback scraping by curl/Prometheus during benches, CI smokes,
// and manual debugging.  It is deliberately NOT a general HTTP server —
// HTTP/1.0, one request per connection, Connection: close, GET only,
// bounded request read, no TLS, binds 127.0.0.1 only.
//
// Concurrency: one background thread owns the listening socket and serves
// requests sequentially; shutdown is an atomic flag polled between
// accepts (poll() with a short timeout, so stop() latency is bounded).
// There is NO mutex in this class — the sources are either internally
// locked (registry, sink) or lock-free (flight recorder) — so ObsServer
// introduces no new lock level and cannot participate in a lock cycle.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace p2pcash::obs {

class FlightRecorder;
class MetricsRegistry;
class TraceSink;

class ObsServer {
 public:
  /// All sources optional: a missing source 404s its endpoint.  `healthy`
  /// (optional) gates /healthz; default is always-healthy.
  struct Sources {
    const MetricsRegistry* metrics = nullptr;
    const TraceSink* traces = nullptr;
    const FlightRecorder* flight = nullptr;
    std::function<bool()> healthy;
  };

  explicit ObsServer(Sources sources) : sources_(std::move(sources)) {}
  ~ObsServer() { stop(); }

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the serving thread.
  /// Returns the bound port, or 0 on bind/listen failure (no thread
  /// started).  Idempotent: returns the current port if already running.
  std::uint16_t start(std::uint16_t port = 0);

  /// Stops the serving thread and closes the listener.  Idempotent.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Requests served since start (for tests; relaxed counter).
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  std::string respond(const std::string& target) const;

  Sources sources_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace p2pcash::obs
