// metrics_registry.h — the single metrics export surface.
//
// Every counter this repo already keeps (crypto OpCounters, the resilient
// RPC layer's ResilienceCounters, simnet byte counters) plus the new
// per-phase latency histograms register here, and the registry re-exports
// all of them through two dumps:
//
//   * prometheus_text() — Prometheus text exposition format (counters,
//     gauges, cumulative histogram buckets, and pXX summary gauges);
//   * json_text()       — a JSON document in the BENCH_*.json house style
//     (schema in EXPERIMENTS.md, "Metrics export" section).
//
// Histograms are log2-bucketed: bucket i holds samples in (2^(i-1), 2^i]
// milliseconds, bucket 0 holds everything <= 1 ms (including 0 and
// negative clamps), and the last bucket is the +Inf overflow.  Percentiles
// are estimated by linear interpolation inside the covering bucket and
// clamped to the observed [min, max] — exact min/max/count/sum are kept
// alongside, so the estimate can never leave the observed range.
//
// Everything here is deterministic: registration order does not matter
// (export order is sorted by name), no wall-clock time is read, and
// doubles are printed with a fixed format — two identical sim runs produce
// byte-identical dumps.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sync/annotated.h"

namespace p2pcash::metrics {
struct OpCounters;
struct ResilienceCounters;
}  // namespace p2pcash::metrics

namespace p2pcash::obs {

/// Monotonically increasing event count.  Lock-free: increments from many
/// threads interleave without tearing (relaxed ordering — a counter value
/// carries no happens-before obligations).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (table memory, queue depth, sim clock).  Lock-free
/// last-writer-wins semantics.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log2-bucketed latency histogram (milliseconds) with exact count/sum/
/// min/max and interpolated percentile summaries.  Internally locked: a
/// record() is a multi-field update (bucket + count + sum + min/max) that
/// must stay consistent, so unlike Counter/Gauge it cannot be a bare
/// atomic.
class Histogram {
 public:
  /// Bucket 0 covers (-inf, 1]; bucket i covers (2^(i-1), 2^i];
  /// bucket kBuckets-1 is the +Inf overflow bucket.
  static constexpr std::size_t kBuckets = 32;

  void record(double value_ms);

  std::uint64_t count() const {
    sync::MutexLock lock(mu_);
    return count_;
  }
  double sum() const {
    sync::MutexLock lock(mu_);
    return sum_;
  }
  /// Smallest / largest recorded sample (0 when empty).
  double min() const {
    sync::MutexLock lock(mu_);
    return count_ ? min_ : 0;
  }
  double max() const {
    sync::MutexLock lock(mu_);
    return count_ ? max_ : 0;
  }
  double mean() const {
    sync::MutexLock lock(mu_);
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Estimated percentile, pct in [0, 100]; 0 when empty.  Linear
  /// interpolation within the covering bucket, clamped to [min, max].
  double percentile(double pct) const;

  /// Snapshot of the bucket counts (by value: the live array is guarded).
  std::array<std::uint64_t, kBuckets> buckets() const {
    sync::MutexLock lock(mu_);
    return buckets_;
  }

  /// Bucket index a sample lands in (exposed for the edge-case tests).
  static std::size_t bucket_index(double value_ms);
  /// Inclusive upper bound of bucket i; +infinity for the overflow bucket.
  static double bucket_upper(std::size_t i);

 private:
  double percentile_locked(double pct) const P2P_REQUIRES(mu_);

  mutable sync::Mutex mu_{"obs.histogram", sync::level::kSink};
  std::array<std::uint64_t, kBuckets> buckets_ P2P_GUARDED_BY(mu_){};
  std::uint64_t count_ P2P_GUARDED_BY(mu_) = 0;
  double sum_ P2P_GUARDED_BY(mu_) = 0;
  double min_ P2P_GUARDED_BY(mu_) = 0;
  double max_ P2P_GUARDED_BY(mu_) = 0;
};

/// One exported reading from a collector (a metric owned elsewhere that
/// the registry re-exports, e.g. an actor's ResilienceCounters).
struct Sample {
  enum class Type { kCounter, kGauge };
  std::string name;
  double value = 0;
  Type type = Type::kCounter;
};

/// Central registry: owns counters/gauges/histograms created through it
/// and pulls externally-owned metrics through registered collectors at
/// export time.  Returned references stay valid for the registry's
/// lifetime (std::map nodes are stable).
///
/// Locking: a reader/writer lock over the instrument maps.  Lookups and
/// exports share; creating an instrument or registering a collector is
/// exclusive.  The instruments themselves are individually thread-safe
/// (atomic Counter/Gauge, internally locked Histogram), so a reference
/// returned by counter()/gauge()/histogram() stays usable without the
/// registry lock.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    sync::MutexLock lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    sync::MutexLock lock(mu_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name) {
    sync::MutexLock lock(mu_);
    return histograms_[name];
  }

  /// nullptr when no such metric has been created.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Registers a pull-style source evaluated at every export.  Collectors
  /// snapshot metrics owned by live objects (actors, the network), so the
  /// registry never holds dangling totals.  Collectors run during exports
  /// with the registry lock held shared: they may lock strictly
  /// lower-level mutexes (trace sink, group caches) but must never call
  /// back into counter()/gauge()/histogram()/register_collector.
  using Collector = std::function<std::vector<Sample>()>;
  void register_collector(Collector fn) {
    sync::MutexLock lock(mu_);
    collectors_.push_back(std::move(fn));
  }

  /// Prometheus text exposition dump of everything known to the registry.
  std::string prometheus_text() const;
  /// JSON dump in the BENCH_*.json house style.
  std::string json_text() const;

  /// All histogram names currently registered, sorted.
  std::vector<std::string> histogram_names() const;

 private:
  /// Runs the collectors.  Callers hold mu_ (shared suffices); collect()
  /// takes no lock itself so a collector can never recursively re-enter
  /// the registry lock (recursive shared_mutex acquisition is UB).
  std::vector<Sample> collect() const P2P_REQUIRES_SHARED(mu_);

  mutable sync::SharedMutex mu_{"obs.metrics_registry",
                                sync::level::kRegistry};
  std::map<std::string, Counter> counters_ P2P_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ P2P_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ P2P_GUARDED_BY(mu_);
  std::vector<Collector> collectors_ P2P_GUARDED_BY(mu_);
};

/// Flattens an OpCounters snapshot into registry samples
/// ("<prefix>_ops_exp_total", …) — the Table-1 counters behind the one
/// export surface, without touching the thread-local counting mechanism
/// table1_test pins.
std::vector<Sample> op_counter_samples(const std::string& prefix,
                                       const metrics::OpCounters& ops);

/// Flattens a ResilienceCounters snapshot ("<prefix>_retries_total", …).
std::vector<Sample> resilience_samples(
    const std::string& prefix, const metrics::ResilienceCounters& rc);

}  // namespace p2pcash::obs
