// clock.h — the time seam between deterministic sim-time and wall-clock.
//
// The obs layer (Tracer, histograms, FlightRecorder) never reads a clock
// of its own: every timestamp flows through an injected `Clock` (or the
// equivalent `std::function<TimeMs()>`), so the SAME tracing code is
//
//   * byte-identical across seed replays when driven by the simulator
//     (SimWorld passes the sim clock — see world.cpp), and
//   * monotonic wall-clock when driven by the real transport (NodeRuntime
//     passes a WallClock that shares its epoch with TcpNet::now()).
//
// WallClock is the ONLY wall-clock read in det_lint-scoped src/obs, and it
// is marked with the reviewed escape hatch below: nothing on a simnet
// replay path ever constructs one (SimWorld injects sim-time), so the
// seed-replay guarantee is untouched.  ManualClock exists for tests that
// need to step time explicitly without a simulator.

#pragma once

#include <atomic>
#include <chrono>  // det_lint: allow: WallClock is the documented wall-clock seam; sim paths inject sim-time
#include <functional>

namespace p2pcash::obs {

/// Milliseconds on whichever clock was injected (sim-time or wall-clock).
/// Redeclared identically in trace.h; both headers stay self-contained.
using TimeMs = double;

/// The seam: something that can tell the time in milliseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs now_ms() const = 0;
};

/// Monotonic wall-clock, milliseconds since construction.  Steady (never
/// steps backwards on NTP adjustments), matching TcpNet::now()'s basis so
/// span timestamps and transport timers share a timescale.
class WallClock final : public Clock {
 public:
  WallClock()
      : epoch_(std::chrono::steady_clock::now()) {}  // det_lint: allow: the wall-clock seam itself; never on a replay path

  TimeMs now_ms() const override {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)  // det_lint: allow: the wall-clock seam itself; never on a replay path
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;  // det_lint: allow: the wall-clock seam itself; never on a replay path
};

/// Test clock: time moves only when the test says so.  Thread-safe (an
/// atomic double) so multi-threaded code under test can read it freely.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeMs start_ms = 0) : now_(start_ms) {}

  TimeMs now_ms() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void set(TimeMs t) { now_.store(t, std::memory_order_relaxed); }
  void advance(TimeMs delta) {
    now_.store(now_.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

 private:
  std::atomic<TimeMs> now_;
};

/// Adapts a Clock to the `std::function<TimeMs()>` shape Tracer and
/// FlightRecorder take.  The clock must outlive every consumer of the
/// returned function.
inline std::function<TimeMs()> clock_fn(const Clock& clock) {
  return [&clock] { return clock.now_ms(); };
}

}  // namespace p2pcash::obs
