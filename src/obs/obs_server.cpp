#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace p2pcash::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 4096;
constexpr int kAcceptPollMs = 200;   // stop() latency bound
constexpr int kClientPollMs = 2000;  // slowloris bound per read

std::string make_response(int code, const char* status,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::uint16_t ObsServer::start(std::uint16_t port) {
  if (listen_fd_ >= 0) return port_;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return 0;
  }

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return port_;
}

void ObsServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void ObsServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kAcceptPollMs);
    if (r <= 0 || !(pfd.revents & POLLIN)) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void ObsServer::handle_connection(int fd) {
  // Read until the header terminator, a bound, or a poll timeout.  The
  // request line is all we use; HTTP/1.0 GET has no body.
  std::string req;
  char buf[1024];
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos &&
         req.find('\n') == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kClientPollMs) <= 0) return;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;
    req.append(buf, static_cast<std::size_t>(n));
  }

  std::string method, target;
  {
    const std::size_t sp1 = req.find(' ');
    if (sp1 == std::string::npos) return;
    const std::size_t sp2 = req.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) return;
    method = req.substr(0, sp1);
    target = req.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  std::string response;
  if (method != "GET") {
    response = make_response(405, "Method Not Allowed", "text/plain",
                             "method not allowed\n");
  } else {
    response = respond(target);
  }
  served_.fetch_add(1, std::memory_order_relaxed);

  const char* data = response.data();
  std::size_t left = response.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, data, left, MSG_NOSIGNAL);
    if (n <= 0) return;
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string ObsServer::respond(const std::string& target) const {
  if (target == "/healthz") {
    const bool ok = sources_.healthy ? sources_.healthy() : true;
    return ok ? make_response(200, "OK", "text/plain", "ok\n")
              : make_response(503, "Service Unavailable", "text/plain",
                              "unhealthy\n");
  }
  if (target == "/metrics" && sources_.metrics) {
    return make_response(200, "OK", "text/plain; version=0.0.4",
                         sources_.metrics->prometheus_text());
  }
  if (target == "/metrics.json" && sources_.metrics) {
    return make_response(200, "OK", "application/json",
                         sources_.metrics->json_text());
  }
  if (target == "/tracez" && sources_.traces) {
    return make_response(200, "OK", "application/x-ndjson",
                         sources_.traces->to_jsonl());
  }
  if (target == "/flightz" && sources_.flight) {
    return make_response(200, "OK", "text/plain",
                         sources_.flight->dump_to_string());
  }
  return make_response(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace p2pcash::obs
