// trace.h — causal tracing for the simulated deployment.
//
// A payment is a causal chain across four machines (client, witness,
// merchant, broker); when one is slow or fails, aggregate numbers cannot
// say where the time went.  The trace layer gives every protocol run a
// TraceId, opens a span per protocol phase (withdraw → assign_witness →
// payment_commit → witness_sign → deposit → reconcile, plus the
// server-side handler spans), and records every retry / failover /
// circuit-breaker event as a point-in-time annotation on the span it
// belongs to.
//
// Context propagation: simnet::Message carries a TraceContext alongside
// its payload.  The context is simulator metadata, NOT wire bytes — it is
// never encoded and never counted by the byte-accounting contract, so
// enabling tracing cannot perturb the Table-2 numbers it exists to
// explain.  Duplicated or reordered deliveries carry the same context as
// the original send, which is what lets a trace show a duplicate arriving
// late.
//
// Determinism: span/trace ids come from plain sequential counters and
// every record is stamped with sim-time (never wall-clock), so a chaos
// seed replays to a byte-identical JSONL trace.  No RNG is ever consumed
// by the trace layer.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sync/annotated.h"

namespace p2pcash::obs {

class Clock;
class MetricsRegistry;

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;
/// Sim-time in milliseconds (simnet::SimTime without the dependency).
using TimeMs = double;

/// The causal context a message carries: which trace it belongs to and
/// which span caused it.  {0, 0} means "untraced".
struct TraceContext {
  TraceId trace = 0;
  SpanId span = 0;

  bool valid() const { return trace != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// A finished span: one named phase of work on one node.
struct SpanRecord {
  TraceId trace = 0;
  SpanId span = 0;
  SpanId parent = 0;  ///< 0 = root of its trace
  std::string name;
  std::uint32_t node = 0;  ///< simnet NodeId the work ran on
  TimeMs start_ms = 0;
  TimeMs end_ms = 0;
  std::string status;  ///< "ok" or a diagnostic
};

/// A point-in-time annotation attached to a span (retry fired, breaker
/// tripped, message dropped, …).
struct EventRecord {
  TraceId trace = 0;
  SpanId span = 0;
  TimeMs at_ms = 0;
  std::string name;
  std::string detail;
};

/// Bounded ring-buffer sink: keeps the most recent `capacity` records
/// (spans and events interleaved in completion order) and counts what it
/// had to drop.  Export is JSONL — one record per line, schema checked by
/// tools/trace_lint.py.  Internally locked (leaf-level): spans finish on
/// whatever thread ran the work.
class TraceSink {
 public:
  /// Batch-level metadata emitted as a leading `{"kind":"meta",...}` line
  /// so tooling can tell sim traces from TCP traces without filename
  /// conventions.  Empty `transport` (the default) suppresses the line
  /// entirely, keeping pre-existing golden sim traces byte-identical.
  struct Meta {
    std::string transport;  ///< "sim", "tcp", ... ; empty = no meta line
    std::uint32_t hardware_threads = 0;
  };

  explicit TraceSink(std::size_t capacity = 1 << 16)
      : capacity_(capacity ? capacity : 1) {}

  /// Sets the batch metadata.  Survives clear(): the transport kind is a
  /// property of the producer, not of the records currently retained.
  void set_meta(Meta meta);
  Meta meta() const {
    sync::MutexLock lock(mu_);
    return meta_;
  }

  void add_span(SpanRecord span);
  void add_event(EventRecord event);

  std::size_t size() const {
    sync::MutexLock lock(mu_);
    return records_.size();
  }
  std::uint64_t dropped() const {
    sync::MutexLock lock(mu_);
    return dropped_;
  }
  std::uint64_t span_count() const {
    sync::MutexLock lock(mu_);
    return span_count_;
  }
  std::uint64_t event_count() const {
    sync::MutexLock lock(mu_);
    return event_count_;
  }
  void clear();

  /// All retained records as JSONL, in completion order.
  std::string to_jsonl() const;
  /// Only the records of one trace (a single payment's causal history).
  std::string trace_jsonl(TraceId trace) const;
  /// Writes to_jsonl() to `path`; returns false (and prints) on failure.
  /// Serializes via to_jsonl() (its own lock scope), then writes with no
  /// lock held.
  bool write_jsonl(const std::string& path) const;

  /// Retained span records of one trace, in completion order.  Returns
  /// pointers into the live buffer, valid only until the next add/clear
  /// AND only while no other thread mutates the sink — a quiescent-
  /// inspection API, hence the analysis opt-out.
  std::vector<const SpanRecord*> spans_for(TraceId trace) const
      P2P_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct Record {
    bool is_span = false;
    SpanRecord span;
    EventRecord event;
  };
  void push(Record record) P2P_REQUIRES(mu_);

  mutable sync::Mutex mu_{"obs.trace_sink", sync::level::kSink};
  const std::size_t capacity_;  // immutable after construction: no guard
  Meta meta_ P2P_GUARDED_BY(mu_);
  std::deque<Record> records_ P2P_GUARDED_BY(mu_);
  std::uint64_t dropped_ P2P_GUARDED_BY(mu_) = 0;
  std::uint64_t span_count_ P2P_GUARDED_BY(mu_) = 0;
  std::uint64_t event_count_ P2P_GUARDED_BY(mu_) = 0;
};

/// Issues trace/span ids, stamps records with the sim clock, forwards
/// finished spans to the sink, and feeds each span's duration into the
/// registry's per-phase histogram ("span_<name>_ms") so the latency
/// accounting falls out of the tracing for free.
class Tracer {
 public:
  /// `clock` supplies current sim-time; `sink` receives finished records;
  /// `registry` (optional) receives per-phase duration histograms.
  Tracer(std::function<TimeMs()> clock, TraceSink* sink,
         MetricsRegistry* registry = nullptr);
  /// Same, reading time through the obs::Clock seam (clock.h).  The clock
  /// must outlive the tracer.  This is how NodeRuntime runs the identical
  /// tracer code on monotonic wall-clock while SimWorld stays on sim-time.
  Tracer(const Clock& clock, TraceSink* sink,
         MetricsRegistry* registry = nullptr);

  /// Opens a root span in a fresh trace.
  TraceContext start_root(std::string_view name, std::uint32_t node);
  /// Opens a child span under `parent` (same trace).  An invalid parent
  /// yields an invalid context (all subsequent calls no-op on it), so
  /// call sites never need to branch on "is tracing on".
  TraceContext start_child(const TraceContext& parent, std::string_view name,
                           std::uint32_t node);
  /// Closes the span: stamps end time, records the duration histogram,
  /// hands the record to the sink.  No-op on invalid/unknown contexts
  /// (spans close exactly once; late duplicates are ignored).
  void end_span(const TraceContext& ctx, std::string_view status = "ok");
  /// Attaches a point-in-time annotation to the span.
  void event(const TraceContext& ctx, std::string_view name,
             std::string_view detail = {});

  /// True if `ctx` names a span that is open (started, not yet ended).
  bool is_open(const TraceContext& ctx) const;
  std::size_t open_spans() const {
    sync::MutexLock lock(mu_);
    return open_.size();
  }

 private:
  std::function<TimeMs()> clock_;  // fixed at construction: no guard
  TraceSink* sink_;                // fixed at construction: no guard
  MetricsRegistry* registry_;      // fixed at construction: no guard
  /// Guards id issuance and the open-span map.  end_span() extracts the
  /// span under this lock, then RELEASES it before calling into the
  /// registry/sink (their locks rank below kTracer; holding across the
  /// calls would work but widens the critical section for no reason).
  mutable sync::Mutex mu_{"obs.tracer", sync::level::kTracer};
  TraceId next_trace_ P2P_GUARDED_BY(mu_) = 1;
  SpanId next_span_ P2P_GUARDED_BY(mu_) = 1;
  std::map<SpanId, SpanRecord> open_ P2P_GUARDED_BY(mu_);
};

}  // namespace p2pcash::obs
