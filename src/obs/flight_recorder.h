// flight_recorder.h — always-on crash breadcrumbs for the real runtime.
//
// When a multithreaded node aborts (assert, lock-order violation, chaos
// kill) the post-mortem question is always "what was it doing in the last
// few milliseconds?"  The FlightRecorder answers it: a fixed-size,
// preallocated ring of small POD entries that any thread can append to
// with one atomic fetch_add and a couple of memcpys — cheap enough to
// leave on in production — plus a dump path that is safe to call from a
// signal handler (no malloc, no locks, no stdio: raw ::open/::write).
//
// Concurrency model: deliberately LOCK-FREE, not merely thread-safe.
//   * record() claims a slot via atomic fetch_add on seq_ and writes the
//     entry fields non-atomically.  A reader that races a writer may see
//     a torn entry; dump() marks entries whose seq stamp is inconsistent
//     instead of trusting them.  Torn breadcrumbs are an accepted cost —
//     a crash dump that can deadlock (because the crashing thread held
//     the recorder's lock) would be worse than one with a garbled line.
//   * Because there is no mutex here, the recorder introduces NO new lock
//     level: it is callable from any lock context, including from inside
//     sync::lock_order's violation handler and from signal handlers.
//
// Timestamps come through the same injected clock seam as the Tracer
// (obs/clock.h): sim-time under the simulator, wall-clock in NodeRuntime.
//
// Process hooks (install_process_hooks):
//   * SIGUSR1  — dump and continue (live inspection of a running node).
//   * SIGABRT  — dump, restore the default handler, re-raise (so the
//     abort still produces a core / nonzero exit for CI).
//   * sync::lock_order violation handler — record the violation as a
//     breadcrumb, dump, then abort (preserving the checker's fail-stop
//     contract).
// The artifact path is set explicitly by the host (NodeRuntime reads no
// environment — src/actors is determinism-scoped); examples/CI read
// P2PCASH_FLIGHT_ARTIFACT themselves and pass it down.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace p2pcash::obs {

class FlightRecorder {
 public:
  /// One breadcrumb.  Fixed-size character fields (truncating copy) so an
  /// entry never allocates and the ring is a flat preallocated array.
  struct Entry {
    double t_ms = 0;
    std::uint64_t seq = 0;  ///< 0 = slot never written
    char name[24] = {};
    char detail[104] = {};
  };

  /// `clock` stamps entries; it must be callable from arbitrary threads.
  /// Capacity is rounded up to at least 8 entries.
  explicit FlightRecorder(std::size_t capacity,
                          std::function<double()> clock);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a breadcrumb.  Lock-free; truncates oversized strings.
  void record(std::string_view name, std::string_view detail = {});

  /// Total entries ever recorded (may exceed capacity).
  std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return ring_.size(); }

  /// Consistent-best-effort copy of the retained entries, oldest first.
  /// Entries that appear torn (seq stamp out of range) are skipped.
  std::vector<Entry> snapshot() const;

  /// The dump text: one line per breadcrumb plus a header.  Allocates —
  /// for tests and /flightz; the signal path uses dump() instead.
  std::string dump_to_string() const;

  /// Sets where dump() writes.  Copies into a fixed internal buffer
  /// (truncating at ~500 bytes) so the signal path needs no allocation.
  /// Empty path disables file dumps (dump() then writes to stderr only).
  void set_artifact_path(std::string_view path);
  std::string artifact_path() const;

  /// Writes the ring to the artifact path (or stderr if none is set).
  /// Signal-safe by construction: ::open/::write/snprintf into stack
  /// buffers, no locks, no allocation.  `reason` names the trigger
  /// ("sigusr1", "abort", "lock_order", ...).
  void dump(const char* reason) const;

  /// Installs SIGUSR1/SIGABRT handlers and chains the sync::lock_order
  /// violation handler to `recorder` (see file comment).  Pass nullptr to
  /// uninstall (restores default signal disposition and the checker's
  /// default print-and-abort handler).  One recorder per process.
  static void install_process_hooks(FlightRecorder* recorder);

 private:
  std::function<double()> clock_;  // fixed at construction: no guard
  std::vector<Entry> ring_;        // preallocated; slots written lock-free
  std::atomic<std::uint64_t> seq_{0};
  char artifact_path_[512] = {};  // fixed buffer: readable from signals
  std::atomic<std::size_t> artifact_len_{0};
};

}  // namespace p2pcash::obs
