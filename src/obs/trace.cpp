#include "obs/trace.h"

#include <cstdio>

#include "obs/clock.h"
#include "obs/metrics_registry.h"

namespace p2pcash::obs {

namespace {

/// Fixed double format shared with the registry dumps: sim times replay
/// exactly, so the same seed serializes to the same bytes.
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_span_line(std::string& out, const SpanRecord& s) {
  out += "{\"kind\":\"span\",\"trace\":";
  out += std::to_string(s.trace);
  out += ",\"span\":";
  out += std::to_string(s.span);
  out += ",\"parent\":";
  out += std::to_string(s.parent);
  out += ",\"name\":\"";
  append_escaped(out, s.name);
  out += "\",\"node\":";
  out += std::to_string(s.node);
  out += ",\"start_ms\":";
  append_number(out, s.start_ms);
  out += ",\"end_ms\":";
  append_number(out, s.end_ms);
  out += ",\"status\":\"";
  append_escaped(out, s.status);
  out += "\"}\n";
}

void append_event_line(std::string& out, const EventRecord& e) {
  out += "{\"kind\":\"event\",\"trace\":";
  out += std::to_string(e.trace);
  out += ",\"span\":";
  out += std::to_string(e.span);
  out += ",\"t_ms\":";
  append_number(out, e.at_ms);
  out += ",\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"detail\":\"";
  append_escaped(out, e.detail);
  out += "\"}\n";
}

void append_meta_line(std::string& out, const TraceSink::Meta& m) {
  out += "{\"kind\":\"meta\",\"transport\":\"";
  append_escaped(out, m.transport);
  out += "\",\"hardware_threads\":";
  out += std::to_string(m.hardware_threads);
  out += "}\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

void TraceSink::set_meta(Meta meta) {
  sync::MutexLock lock(mu_);
  meta_ = std::move(meta);
}

void TraceSink::push(Record record) {
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

void TraceSink::add_span(SpanRecord span) {
  sync::MutexLock lock(mu_);
  ++span_count_;
  Record r;
  r.is_span = true;
  r.span = std::move(span);
  push(std::move(r));
}

void TraceSink::add_event(EventRecord event) {
  sync::MutexLock lock(mu_);
  ++event_count_;
  Record r;
  r.is_span = false;
  r.event = std::move(event);
  push(std::move(r));
}

void TraceSink::clear() {
  sync::MutexLock lock(mu_);
  records_.clear();
  dropped_ = 0;
  span_count_ = 0;
  event_count_ = 0;
}

std::string TraceSink::to_jsonl() const {
  sync::MutexLock lock(mu_);
  std::string out;
  if (!meta_.transport.empty()) append_meta_line(out, meta_);
  for (const Record& r : records_) {
    if (r.is_span)
      append_span_line(out, r.span);
    else
      append_event_line(out, r.event);
  }
  return out;
}

std::string TraceSink::trace_jsonl(TraceId trace) const {
  sync::MutexLock lock(mu_);
  std::string out;
  if (!meta_.transport.empty()) append_meta_line(out, meta_);
  for (const Record& r : records_) {
    if (r.is_span && r.span.trace == trace)
      append_span_line(out, r.span);
    else if (!r.is_span && r.event.trace == trace)
      append_event_line(out, r.event);
  }
  return out;
}

bool TraceSink::write_jsonl(const std::string& path) const {
  const std::string doc = to_jsonl();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), doc.size());
  return true;
}

std::vector<const SpanRecord*> TraceSink::spans_for(TraceId trace) const {
  std::vector<const SpanRecord*> out;
  for (const Record& r : records_) {
    if (r.is_span && r.span.trace == trace) out.push_back(&r.span);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(std::function<TimeMs()> clock, TraceSink* sink,
               MetricsRegistry* registry)
    : clock_(std::move(clock)), sink_(sink), registry_(registry) {}

Tracer::Tracer(const Clock& clock, TraceSink* sink, MetricsRegistry* registry)
    : Tracer(clock_fn(clock), sink, registry) {}

TraceContext Tracer::start_root(std::string_view name, std::uint32_t node) {
  const TimeMs now = clock_();
  sync::MutexLock lock(mu_);
  SpanRecord span;
  span.trace = next_trace_++;
  span.span = next_span_++;
  span.parent = 0;
  span.name = std::string(name);
  span.node = node;
  span.start_ms = now;
  const TraceContext ctx{span.trace, span.span};
  open_.emplace(span.span, std::move(span));
  return ctx;
}

TraceContext Tracer::start_child(const TraceContext& parent,
                                 std::string_view name, std::uint32_t node) {
  if (!parent.valid()) return {};
  const TimeMs now = clock_();
  sync::MutexLock lock(mu_);
  SpanRecord span;
  span.trace = parent.trace;
  span.span = next_span_++;
  span.parent = parent.span;
  span.name = std::string(name);
  span.node = node;
  span.start_ms = now;
  const TraceContext ctx{span.trace, span.span};
  open_.emplace(span.span, std::move(span));
  return ctx;
}

void Tracer::end_span(const TraceContext& ctx, std::string_view status) {
  if (!ctx.valid()) return;
  SpanRecord span;
  {
    sync::MutexLock lock(mu_);
    auto it = open_.find(ctx.span);
    if (it == open_.end()) return;  // already closed (or never opened)
    span = std::move(it->second);
    open_.erase(it);
  }
  // Downstream calls (registry histogram, sink append) run without the
  // tracer lock held: both take their own lower-level locks.
  span.end_ms = clock_();
  span.status = std::string(status);
  if (registry_)
    registry_->histogram("span_" + span.name + "_ms")
        .record(span.end_ms - span.start_ms);
  if (sink_) sink_->add_span(std::move(span));
}

void Tracer::event(const TraceContext& ctx, std::string_view name,
                   std::string_view detail) {
  if (!ctx.valid() || !sink_) return;
  EventRecord e;
  e.trace = ctx.trace;
  e.span = ctx.span;
  e.at_ms = clock_();
  e.name = std::string(name);
  e.detail = std::string(detail);
  sink_->add_event(std::move(e));
}

bool Tracer::is_open(const TraceContext& ctx) const {
  if (!ctx.valid()) return false;
  sync::MutexLock lock(mu_);
  return open_.contains(ctx.span);
}

}  // namespace p2pcash::obs
