// double_spend_attack — an attacker's-eye view of why the scheme holds.
//
// Mallory tries, in order:
//   1. the naive double spend (sequential, two merchants);
//   2. the concurrent race (two colluding clients firing simultaneously);
//   3. corrupting the coin's witness (who signs everything);
//   4. forging a coin outright.
// For each attack the example shows what the defenses do: real-time
// refusal with extraction proof, commitment serialization, deposit-time
// liability shift onto the witness's security deposit, and signature
// verification.  Ends with the arbiter double-checking the evidence.
//
//   $ ./examples/double_spend_attack

#include <cstdio>

#include "ecash/deployment.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();
  Deployment dep(grp, 8, /*seed=*/666, Broker::Config{},
                 /*security_deposit=*/500);
  auto mallory = dep.make_wallet();
  Timestamp now = 1'000;
  auto ids = dep.merchant_ids();

  // ---------------------------------------------------------------------
  std::printf("attack 1: spend the same coin at two shops, one after the "
              "other\n");
  auto coin = dep.withdraw(*mallory, 100, now).value();
  auto w_id = coin.coin.witnesses[0].merchant;
  MerchantId shop_a, shop_b;
  for (const auto& id : ids) {
    if (id == w_id) continue;
    if (shop_a.empty())
      shop_a = id;
    else if (shop_b.empty())
      shop_b = id;
  }
  auto first = dep.pay(*mallory, coin, shop_a, now + 10);
  auto second = dep.pay(*mallory, coin, shop_b, now + 20);
  std::printf("  spend 1 at %s: %s\n", shop_a.c_str(),
              first.accepted ? "accepted" : "refused");
  std::printf("  spend 2 at %s: %s — witness %s answered with a proof that "
              "opens A and B\n",
              shop_b.c_str(), second.accepted ? "ACCEPTED (!)" : "refused",
              w_id.c_str());
  if (second.double_spend_proof) {
    bool ok = second.double_spend_proof->verify(grp);
    bool are_secrets = second.double_spend_proof->secrets.of_a.e1 ==
                       coin.secret.x1;
    std::printf("  proof verifies publicly: %s; recovered Mallory's exact "
                "secrets: %s\n",
                ok ? "yes" : "no", are_secrets ? "yes" : "no");
  }

  // ---------------------------------------------------------------------
  std::printf("\nattack 2: race two shops before the witness can notice\n");
  auto coin2 = dep.withdraw(*mallory, 100, now).value();
  // Both payments request commitments at the same instant; the witness's
  // single-flight rule (one live commitment per coin) serializes them.
  auto intent_a = mallory->prepare_payment(coin2, shop_a);
  auto intent_b = mallory->prepare_payment(coin2, shop_b);
  auto& witness2 = *dep.node(coin2.coin.witnesses[0].merchant).witness;
  auto commit_a =
      witness2.request_commitment(intent_a.coin_hash, intent_a.nonce, now);
  auto commit_b =
      witness2.request_commitment(intent_b.coin_hash, intent_b.nonce, now);
  std::printf("  commitment for shop A: %s\n",
              commit_a.ok() ? "issued" : commit_a.refusal().detail.c_str());
  std::printf("  commitment for shop B: %s\n",
              commit_b.ok() ? "issued (!)" : to_string(commit_b.refusal().reason));
  std::printf("  -> the race is lost at step 1: only one transaction holds "
              "a live commitment\n");

  // ---------------------------------------------------------------------
  std::printf("\nattack 3: corrupt the witness (it signs everything)\n");
  auto coin3 = dep.withdraw(*mallory, 100, now).value();
  auto w3 = coin3.coin.witnesses[0].merchant;
  dep.node(w3).witness->set_faulty(true);
  MerchantId victim_a, victim_b;
  for (const auto& id : ids) {
    if (id == w3) continue;
    if (victim_a.empty())
      victim_a = id;
    else if (victim_b.empty())
      victim_b = id;
  }
  auto v1 = dep.pay(*mallory, coin3, victim_a, now + 100);
  auto v2 = dep.pay(*mallory, coin3, victim_b, now + 110);
  std::printf("  both shops accepted: %s — Mallory got two services for one "
              "coin\n",
              v1.accepted && v2.accepted ? "yes" : "no");
  auto s1 = dep.deposit_all(victim_a, now + 1000);
  auto s2 = dep.deposit_all(victim_b, now + 1100);
  const auto* w_acct = dep.broker().account(w3);
  std::printf("  deposits: %s credited %u, %s credited %u\n", victim_a.c_str(),
              s1.credited, victim_b.c_str(), s2.credited);
  std::printf("  but the broker caught witness %s double-signing: flagged=%s,"
              " security deposit %u -> %u cents\n",
              w3.c_str(), w_acct->flagged ? "yes" : "no", 500u,
              w_acct->deposit_remaining);
  std::printf("  -> merchants are whole; the corrupted witness paid, and is "
              "out of the next table\n");

  // ---------------------------------------------------------------------
  std::printf("\nattack 4: forge a coin without the broker\n");
  crypto::ChaChaRng forge_rng("mallory-forge");
  Coin forged;
  forged.bare.info = coin.coin.bare.info;
  forged.bare.a = grp.exp_g(grp.random_scalar(forge_rng));
  forged.bare.b = grp.exp_g(grp.random_scalar(forge_rng));
  forged.bare.sig = coin.coin.bare.sig;  // splice a real signature
  forged.witnesses = coin.coin.witnesses;
  auto verdict = verify_coin(grp, dep.broker().coin_key(), forged, now);
  std::printf("  spliced coin verifies: %s (%s)\n",
              verdict.ok() ? "yes (!)" : "no",
              verdict.ok() ? "" : verdict.refusal().detail.c_str());

  // ---------------------------------------------------------------------
  std::printf("\narbitration: the evidence from attack 3 stands on its own\n");
  const auto& faults = dep.broker().witness_faults();
  if (!faults.empty()) {
    auto verdict3 = dep.arbiter().judge_double_signing(
        faults[0].first, faults[0].second, faults[0].witness);
    std::printf("  arbiter verdict on the two signed transcripts: %s\n",
                to_string(verdict3));
  }
  return 0;
}
