// witness_failover — operating through witness unavailability.
//
// The paper's answer to dead witnesses is two-layered (§4): k-of-n witness
// assignment for real-time tolerance, and soft-expiry coin renewal as the
// backstop.  This example walks a coin through both layers:
//   * a 2-of-3 coin keeps spending with one witness machine dark;
//   * a 1-of-1 coin whose witness stays dark is stranded, then rescued by
//     renewing it (after its soft expiry) into a fresh coin with a fresh
//     witness.
//
//   $ ./examples/witness_failover

#include <cstdio>

#include "ecash/deployment.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

namespace {

MerchantId pick_non_witness(const Deployment& dep_const, Deployment& dep,
                            const WalletCoin& coin) {
  (void)dep_const;
  for (const auto& id : dep.merchant_ids()) {
    bool witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) witness = true;
    if (!witness && !dep.is_offline(id)) return id;
  }
  return {};
}

}  // namespace

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();

  std::printf("== layer 1: 2-of-3 witnesses tolerate a dead machine ==\n");
  Broker::Config multi;
  multi.witness_n = 3;
  multi.witness_k = 2;
  Deployment dep(grp, 12, /*seed=*/99, multi);
  auto wallet = dep.make_wallet();
  Timestamp now = 1'000;
  auto coin = dep.withdraw(*wallet, 50, now).value();
  std::printf("  coin's witnesses:");
  for (const auto& w : coin.coin.witnesses) std::printf(" %s", w.merchant.c_str());
  std::printf("  (any 2 must sign)\n");

  dep.set_offline(coin.coin.witnesses[0].merchant, true);
  std::printf("  %s goes dark\n", coin.coin.witnesses[0].merchant.c_str());
  auto shop = pick_non_witness(dep, dep, coin);
  auto result = dep.pay(*wallet, coin, shop, now + 10);
  std::printf("  payment at %s: %s\n", shop.c_str(),
              result.accepted ? "accepted — two live witnesses sufficed"
                              : result.refusal->detail.c_str());

  std::printf("\n== layer 2: renewal rescues a stranded 1-of-1 coin ==\n");
  Broker::Config single;        // default 1-of-1
  single.soft_lifetime_ms = 60'000;  // short-lived coins for the demo
  single.renewal_window_ms = 600'000;
  single.deposit_grace_ms = 10'000;
  Deployment dep2(grp, 12, /*seed=*/100, single);
  auto wallet2 = dep2.make_wallet();
  auto stranded = dep2.withdraw(*wallet2, 50, now).value();
  auto lone_witness = stranded.coin.witnesses[0].merchant;
  dep2.set_offline(lone_witness, true);
  std::printf("  coin's only witness %s goes dark\n", lone_witness.c_str());

  auto shop2 = pick_non_witness(dep2, dep2, stranded);
  auto blocked = dep2.pay(*wallet2, stranded, shop2, now + 10);
  std::printf("  payment attempt: %s (%s)\n",
              blocked.accepted ? "accepted (?)" : "fails",
              blocked.refusal ? blocked.refusal->detail.c_str() : "");

  // Wait out the soft expiry + deposit grace, then exchange the coin.  The
  // broker checks the coin was never spent/renewed and issues a fresh
  // blind-signed coin — new h(bare coin), new witness.
  Timestamp renew_at = stranded.coin.bare.info.soft_expiry +
                       dep2.broker().config().deposit_grace_ms + 1'000;
  auto renewed = dep2.renew(*wallet2, stranded, renew_at);
  if (!renewed) {
    std::printf("  renewal failed: %s\n", renewed.refusal().detail.c_str());
    return 1;
  }
  std::printf("  renewed at t=%lld into a fresh coin; new witness: %s\n",
              static_cast<long long>(renew_at),
              renewed.value().coin.witnesses[0].merchant.c_str());

  auto shop3 = pick_non_witness(dep2, dep2, renewed.value());
  auto rescued = dep2.pay(*wallet2, renewed.value(), shop3, renew_at + 10);
  std::printf("  payment with the renewed coin at %s: %s\n", shop3.c_str(),
              rescued.accepted ? "accepted" : "refused");

  std::printf("\n  (hard expiry bounds the rescue window: after t=%lld the "
              "coin is void)\n",
              static_cast<long long>(renewed.value().coin.bare.info.hard_expiry));
  return result.accepted && !blocked.accepted && rescued.accepted ? 0 : 1;
}
