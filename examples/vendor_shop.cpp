// vendor_shop — the paper's motivating scenario (§1): ad-free web vendors
// charging "a penny or so for access".
//
// A newspaper, a music store and a shareware author sell mini-priced items.
// A reader tops up a wallet with a batch of coins, browses and buys across
// all three vendors over a simulated WAN (the actors layer), and the
// vendors batch-deposit at end of day.  Demonstrates: multi-coin wallets,
// concurrent clients, per-vendor revenue, and that no one needed a credit
// card or an online broker at purchase time.
//
//   $ ./examples/vendor_shop

#include <cstdio>
#include <map>

#include "actors/world.h"

using namespace p2pcash;
using namespace p2pcash::actors;

namespace {

struct Item {
  const char* vendor;  // merchant id
  const char* what;
  ecash::Cents price;
};

}  // namespace

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();
  SimWorld::Options opt;
  opt.merchants = 3;
  opt.seed = 7;
  opt.cost = simnet::openssl_cost();  // a modern deployment
  SimWorld world(grp, opt);
  // m000 = The Daily Byte, m001 = Chord Records, m002 = TinyTools.
  std::map<std::string, const char*> names = {
      {"m000", "The Daily Byte (news)"},
      {"m001", "Chord Records (music)"},
      {"m002", "TinyTools (shareware tips)"}};

  auto& alice = world.add_client();
  auto& bob = world.add_client();

  // Morning: both readers withdraw small batches (each coin is withdrawn
  // independently so coins stay unlinkable, per Algorithm 1 step 0).
  std::printf("== morning: wallets top up ==\n");
  int pending = 0;
  // GCC 12's -Wmaybe-uninitialized misfires on the Outcome<WalletCoin>
  // variant as it is copied through std::function at -O2 (the refusal
  // alternative's string is only live when !c, which the analysis loses
  // track of after inlining).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  auto top_up = [&](ClientActor& who, const char* name, int coins,
                    ecash::Cents denom) {
    for (int i = 0; i < coins; ++i) {
      ++pending;
      who.withdraw(denom, [&, name](ecash::Outcome<ecash::WalletCoin> c) {
        --pending;
        if (!c) {
          std::printf("  %s: withdrawal failed: %s\n", name,
                      c.refusal().detail.c_str());
          return;
        }
        who.wallet().add_coin(std::move(c).value());
      });
    }
  };
  top_up(alice, "alice", 5, 2);  // five 2-cent coins
  top_up(bob, "bob", 3, 5);     // three 5-cent coins
#pragma GCC diagnostic pop
  world.sim().run();
  std::printf("  alice: %u cents in %zu coins;  bob: %u cents in %zu coins\n",
              alice.wallet().balance(), alice.wallet().coins().size(),
              bob.wallet().balance(), bob.wallet().coins().size());

  // Daytime: purchases interleave across vendors over the WAN.
  std::printf("\n== daytime: shopping (50-100 ms WAN, OpenSSL crypto) ==\n");
  const Item kAliceCart[] = {{"m000", "today's front page", 2},
                             {"m001", "one track preview", 2},
                             {"m000", "the crossword", 2}};
  const Item kBobCart[] = {{"m002", "pro tip #42", 5},
                           {"m001", "b-side single", 5}};
  auto shop = [&](ClientActor& who, const char* name,
                  std::span<const Item> cart) {
    for (const auto& item : cart) {
      auto coin = who.wallet().take_coin(item.price);
      if (!coin) {
        std::printf("  %s is out of %u-cent coins\n", name, item.price);
        continue;
      }
      who.pay(*coin, item.vendor,
              [&, name, item](ClientActor::PayResult result) {
                std::printf("  %-5s buys %-22s at %-24s %s (%4.0f ms)\n",
                            name, item.what, names[item.vendor],
                            result.accepted ? "ok " : "REFUSED",
                            result.elapsed_ms);
              });
    }
  };
  shop(alice, "alice", kAliceCart);
  shop(bob, "bob", kBobCart);
  world.sim().run();

  // Evening: vendors batch-deposit. The broker settles and the books must
  // balance exactly.
  std::printf("\n== evening: vendors deposit ==\n");
  for (const auto& id : world.merchant_ids()) {
    for (auto& st : world.merchant(id).drain_deposit_queue()) {
      wire::Writer w;
      st.encode(w);
      world.net().send(simnet::Message{world.merchant_node(id),
                                       world.directory().broker,
                                       "deposit.submit", w.take(), {}});
    }
  }
  world.sim().run();
  std::int64_t total = 0;
  for (const auto& id : world.merchant_ids()) {
    auto balance = world.broker().account(id)->balance;
    total += balance;
    std::printf("  %-26s earned %3lld cents\n", names[id],
                static_cast<long long>(balance));
  }
  std::printf("  broker: issued %llu coins (%lld cents in), paid out %lld\n",
              static_cast<unsigned long long>(world.broker().coins_issued()),
              static_cast<long long>(world.broker().fiat_collected()),
              static_cast<long long>(world.broker().fiat_paid_out()));
  std::printf("  leftover wallet change: alice %u, bob %u cents\n",
              alice.wallet().balance(), bob.wallet().balance());
  bool books_balance =
      world.broker().fiat_collected() ==
      total + alice.wallet().balance() + bob.wallet().balance();
  std::printf("  books balance: %s\n", books_balance ? "yes" : "NO");
  return books_balance ? 0 : 1;
}
