// quickstart — the 60-second tour of the public API:
// set up a broker and merchants, withdraw an anonymous coin, spend it with
// real-time double-spending protection, and deposit it.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "crypto/encoding.h"
#include "ecash/deployment.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

int main() {
  // 1. A Schnorr group at the paper's production sizes (1024-bit p,
  //    160-bit q), generated deterministically from a public seed.
  const auto& grp = group::SchnorrGroup::production_1024();
  std::printf("group: |p| = %zu bits, |q| = %zu bits\n",
              grp.p().bit_length(), grp.q().bit_length());

  // 2. A broker plus 8 registered merchants (each also runs a witness
  //    service), with witness table v1 published.  Deployment wires them
  //    in-memory; the actors/ layer runs the same protocols over a
  //    simulated WAN.
  Deployment dep(grp, /*n_merchants=*/8, /*seed=*/2026);
  std::printf("merchants registered: %zu, witness table v%u published\n",
              dep.merchant_ids().size(),
              dep.broker().current_table().version());

  // 3. An anonymous client wallet withdraws a 25-cent coin.  The broker
  //    blind-signs it: it will never be able to link the coin to this
  //    withdrawal.
  auto wallet = dep.make_wallet();
  Timestamp now = 1'000;
  auto coin = dep.withdraw(*wallet, /*denomination=*/25, now);
  if (!coin) {
    std::printf("withdrawal failed: %s\n", coin.refusal().detail.c_str());
    return 1;
  }
  const auto& witness = coin.value().coin.witnesses[0].merchant;
  std::printf("withdrew a %u-cent coin; h(bare coin) assigned witness %s\n",
              coin.value().coin.bare.info.denomination, witness.c_str());

  // 4. Spend it at a merchant.  Under the hood: witness commitment, NIZK
  //    payment transcript, witness countersignature — 3 message rounds.
  MerchantId shop = dep.merchant_ids().front() == witness
                        ? dep.merchant_ids().back()
                        : dep.merchant_ids().front();
  auto payment = dep.pay(*wallet, coin.value(), shop, now + 10);
  std::printf("payment at %s: %s\n", shop.c_str(),
              payment.accepted ? "service delivered" : "refused");

  // 5. Try to double-spend the same coin elsewhere: blocked in real time,
  //    with a publicly verifiable proof extracted from the two transcripts.
  MerchantId other;
  for (const auto& id : dep.merchant_ids()) {
    if (id != shop) {
      other = id;
      break;
    }
  }
  auto fraud = dep.pay(*wallet, coin.value(), other, now + 20);
  std::printf("double-spend at %s: %s\n", other.c_str(),
              fraud.accepted ? "ACCEPTED (bug!)" : "blocked before service");
  if (fraud.double_spend_proof) {
    std::printf("  proof verifies: %s (reveals the coin's representation "
                "secrets)\n",
                fraud.double_spend_proof->verify(grp) ? "yes" : "no");
  }

  // 6. The merchant cashes the coin whenever it likes — the broker was
  //    never on the payment's critical path.
  auto summary = dep.deposit_all(shop, now + 60'000);
  std::printf("deposit: %u cents credited to %s (balance now %lld)\n",
              summary.credited, shop.c_str(),
              static_cast<long long>(dep.broker().account(shop)->balance));
  return payment.accepted && !fraud.accepted ? 0 : 1;
}
