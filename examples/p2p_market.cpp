// p2p_market — the PPay scenario from the paper's related work (§2):
// "peers are clients and merchants at the same time: thus, clients can pay
// with the (transferable) coins that they obtain from selling their own
// goods, minimizing the number of interactions with the bank/broker."
//
// Three peers trade in a small market using the transferability extension:
// only ONE withdrawal ever touches the broker; the same coin then changes
// hands peer-to-peer (witness-endorsed), and whoever holds it last cashes
// it.  Also shows the fraud case: a peer who re-spends a coin it already
// handed over incriminates itself.
//
//   $ ./examples/p2p_market

#include <cstdio>

#include "ecash/deployment.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();
  Deployment dep(grp, 8, /*seed=*/314);
  auto alice = dep.make_wallet();
  auto bob = dep.make_wallet();
  auto carol = dep.make_wallet();
  Timestamp now = 1'000;

  std::printf("== one broker interaction: alice buys a 50c coin ==\n");
  auto coin = dep.withdraw(*alice, 50, now).value();
  std::printf("  coin witness: %s; broker interactions so far: 1\n\n",
              coin.coin.witnesses[0].merchant.c_str());

  std::printf("== the coin circulates peer-to-peer ==\n");
  auto to_bob = dep.transfer(*alice, coin, *bob, now + 10);
  if (!to_bob.received) return 1;
  std::printf("  alice -> bob   (pays for bob's used textbook)  chain: %zu "
              "link\n",
              to_bob.received->coin.transfers.size());
  auto to_carol = dep.transfer(*bob, *to_bob.received, *carol, now + 20);
  if (!to_carol.received) return 1;
  std::printf("  bob   -> carol (pays for carol's concert tape) chain: %zu "
              "links\n",
              to_carol.received->coin.transfers.size());
  std::printf("  each hop needed only the coin's witness — no broker.\n\n");

  std::printf("== fraud attempt: bob re-spends the coin he gave carol ==\n");
  MerchantId shop;
  for (const auto& id : dep.merchant_ids()) {
    bool w = false;
    for (const auto& e : coin.coin.witnesses)
      if (e.merchant == id) w = true;
    if (!w) {
      shop = id;
      break;
    }
  }
  auto fraud = dep.pay(*bob, *to_bob.received, shop, now + 30);
  std::printf("  bob's stale copy at %s: %s\n", shop.c_str(),
              fraud.accepted ? "ACCEPTED (bug!)" : "refused");
  if (fraud.double_spend_proof) {
    bool bobs_secrets =
        fraud.double_spend_proof->secrets.of_a.e1 ==
        to_bob.received->secret.x1;
    std::printf("  the witness's proof opens bob's own commitments: %s\n",
                bobs_secrets ? "yes — bob incriminated himself" : "no");
  }
  std::printf("\n== carol cashes out ==\n");
  auto spend = dep.pay(*carol, *to_carol.received, shop, now + 40);
  std::printf("  carol spends at %s: %s\n", shop.c_str(),
              spend.accepted ? "accepted" : "refused (?)");
  auto summary = dep.deposit_all(shop, now + 1000);
  std::printf("  %s deposits %u cents; broker interactions total: 2 "
              "(1 withdrawal + 1 deposit) for 3 trades\n",
              shop.c_str(), summary.credited);
  return spend.accepted && !fraud.accepted ? 0 : 1;
}
