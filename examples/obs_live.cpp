// obs_live — a live observable node: NodeRuntime over real loopback TCP
// with the full obs stack wired up, serving /metrics, /healthz, /tracez
// and /flightz over HTTP while payments flow.
//
//   $ ./examples/obs_live [--payments N] [--serve-ms MS] [--port P]
//                         [--port-file PATH]
//
// Runs N withdraw+pay rounds, starts the scrape endpoint, then keeps
// serving for --serve-ms so an external scraper (curl, Prometheus, the CI
// smoke) can observe the node.  --port-file writes the bound port to a
// file, for scripts that pass --port 0 (ephemeral).
//
// Honors P2PCASH_FLIGHT_ARTIFACT: if set, the flight recorder dumps its
// breadcrumb ring there on abort or SIGUSR1 (kill -USR1 $pid for a live
// snapshot).  Examples are outside the det_lint scope, so reading the
// environment here — and passing it DOWN into the det-scoped runtime as
// an explicit option — is exactly the intended layering.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "actors/runtime.h"

using namespace p2pcash;
using namespace p2pcash::actors;

namespace {

struct Args {
  int payments = 3;
  long serve_ms = 0;
  int port = 0;
  std::string port_file;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--payments") {
      args.payments = std::atoi(value());
    } else if (arg == "--serve-ms") {
      args.serve_ms = std::atol(value());
    } else if (arg == "--port") {
      args.port = std::atoi(value());
    } else if (arg == "--port-file") {
      args.port_file = value();
    } else {
      std::fprintf(stderr,
                   "usage: obs_live [--payments N] [--serve-ms MS] "
                   "[--port P] [--port-file PATH]\n");
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  const auto& grp = group::SchnorrGroup::test_256();
  NodeRuntime::Options opt;
  opt.merchants = 4;
  opt.worker_threads = 2;
  opt.seed = 2026;
  opt.durable_stores = true;  // fold store fsync latency into /metrics
  if (const char* artifact = std::getenv("P2PCASH_FLIGHT_ARTIFACT"))
    opt.flight_artifact = artifact;

  // rt.start() installs the process crash hooks (SIGABRT / SIGUSR1 dump
  // the breadcrumb ring) because flight_artifact is set above.
  NodeRuntime rt(grp, opt);
  auto& client = rt.add_client();
  rt.start();

  const auto merchants = rt.merchant_ids();
  int accepted = 0;
  for (int i = 0; i < args.payments; ++i) {
    auto coin = rt.withdraw(client, 100);
    if (!coin.ok()) {
      std::fprintf(stderr, "withdraw failed: %s\n",
                   coin.refusal().detail.c_str());
      continue;
    }
    const auto& target = merchants[static_cast<std::size_t>(i) %
                                   merchants.size()];
    auto result = rt.pay(client, std::move(coin).value(), target);
    if (result.accepted) ++accepted;
  }
  // Flush the deferred deposits so /tracez shows the full protocol
  // (withdraw ... deposit) for every accepted payment.
  for (const auto& id : merchants) {
    rt.net().post(rt.merchant_node(id),
                  [&rt, id] { rt.merchant_actor(id).flush_deposits(); });
  }

  const std::uint16_t port =
      rt.start_obs_server(static_cast<std::uint16_t>(args.port));
  if (port == 0) {
    std::fprintf(stderr, "obs_live: failed to bind scrape port\n");
    return 1;
  }
  if (!args.port_file.empty()) {
    if (std::FILE* f = std::fopen(args.port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", port);
      std::fclose(f);
    }
  }
  std::printf("obs_live: %d/%d payments accepted\n", accepted,
              args.payments);
  std::printf("obs_live: serving http://127.0.0.1:%u/metrics (/healthz, "
              "/tracez, /flightz) for %ld ms\n",
              port, args.serve_ms);
  std::fflush(stdout);

  std::this_thread::sleep_for(std::chrono::milliseconds(args.serve_ms));

  rt.stop();
  std::printf("obs_live: served %llu scrape request(s)\n",
              static_cast<unsigned long long>(
                  rt.obs_server().requests_served()));
  return accepted == args.payments ? 0 : 1;
}
